#include "busy/special_cases.hpp"

#include <gtest/gtest.h>

#include "busy/exact_busy.hpp"
#include "busy/first_fit.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;

ContinuousInstance intervals(std::vector<std::pair<double, double>> spans,
                             int g) {
  std::vector<core::ContinuousJob> jobs;
  for (auto [lo, hi] : spans) jobs.push_back({lo, hi, hi - lo});
  return ContinuousInstance(std::move(jobs), g);
}

TEST(InstanceClasses, ProperDetection) {
  EXPECT_TRUE(is_proper_instance(intervals({{0, 2}, {1, 3}, {2, 4}}, 1)));
  EXPECT_FALSE(is_proper_instance(intervals({{0, 4}, {1, 2}}, 1)));
  EXPECT_TRUE(is_proper_instance(intervals({{0, 2}, {0, 2}}, 1)))
      << "identical intervals are not strict containment";
  EXPECT_TRUE(is_proper_instance(intervals({}, 1)));
}

TEST(InstanceClasses, CliqueDetection) {
  EXPECT_TRUE(is_clique_instance(intervals({{0, 3}, {1, 4}, {2, 5}}, 1)));
  EXPECT_FALSE(is_clique_instance(intervals({{0, 1}, {2, 3}}, 1)));
  EXPECT_TRUE(is_clique_instance(intervals({}, 1)));
}

TEST(ProperClique, RejectsNonCliqueOrNonProper) {
  EXPECT_FALSE(solve_proper_clique(intervals({{0, 1}, {5, 6}}, 2)).has_value());
  EXPECT_FALSE(solve_proper_clique(intervals({{0, 9}, {3, 4}}, 2)).has_value());
}

TEST(ProperClique, SingleBundleWhenCapacityAllows) {
  const auto inst = intervals({{0, 3}, {1, 4}, {2, 5}}, 3);
  const auto sched = solve_proper_clique(inst);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->machine_count(), 1);
  EXPECT_NEAR(core::busy_cost(inst, *sched), 5.0, 1e-9);
}

TEST(ProperClique, SplitsWhenOverCapacity) {
  // Four staircase jobs around point 2, g = 2: consecutive pairs.
  const auto inst = intervals({{0, 3}, {1, 4}, {1.5, 4.5}, {2, 5}}, 2);
  const auto sched = solve_proper_clique(inst);
  ASSERT_TRUE(sched.has_value());
  std::string why;
  EXPECT_TRUE(core::check_busy_schedule(inst, *sched, &why)) << why;
  const auto exact = solve_exact_interval(inst);
  EXPECT_NEAR(core::busy_cost(inst, *sched), core::busy_cost(inst, *exact),
              1e-9);
}

/// Property (footnote 1 / Mertzios et al. [12]): the DP is exact on proper
/// cliques, and FIRSTFIT-by-release stays within 2x on them.
class ProperCliqueRandom : public ::testing::TestWithParam<int> {};

TEST_P(ProperCliqueRandom, DpMatchesExactAndReleaseFitWithinTwo) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131071ULL);
  for (int trial = 0; trial < 10; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 9));
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.horizon = 12;
    params.max_length = 4;
    const ContinuousInstance inst = gen::random_proper_clique(rng, params);
    ASSERT_TRUE(is_proper_instance(inst));
    ASSERT_TRUE(is_clique_instance(inst));

    const auto dp = solve_proper_clique(inst);
    ASSERT_TRUE(dp.has_value());
    std::string why;
    EXPECT_TRUE(core::check_busy_schedule(inst, *dp, &why)) << why;

    const auto exact = solve_exact_interval(inst);
    ASSERT_TRUE(exact.has_value());
    const double opt = core::busy_cost(inst, *exact);
    EXPECT_NEAR(core::busy_cost(inst, *dp), opt, 1e-9)
        << "proper-clique DP must be exact";

    const double release_fit =
        core::busy_cost(inst, first_fit_by_release(inst));
    EXPECT_LE(release_fit, 2 * opt + 1e-9)
        << "FIRSTFIT by release is 2-approx on proper instances";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProperCliqueRandom, ::testing::Range(1, 9));

}  // namespace
}  // namespace abt::busy
