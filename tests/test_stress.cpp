// Mid-size randomized integration stress: no exact oracles, only the
// paper's invariants — every algorithm must produce checker-clean output
// whose cost sits between the lower bounds and its proven factor times a
// lower-bound-based ceiling, across instance shapes well beyond the unit
// tests' sizes.
#include <gtest/gtest.h>

#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "busy/demand_profile.hpp"
#include "busy/first_fit.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/lower_bounds.hpp"
#include "busy/preemptive.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt {
namespace {

struct StressParam {
  int seed;
  int jobs;
  int capacity;
};

class ActiveStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(ActiveStress, MinimalAndRoundingAgreeOnInvariants) {
  const auto [seed, jobs, capacity] = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(seed) * 6700417ULL);
  gen::SlottedParams params;
  params.num_jobs = jobs;
  params.horizon = 3 * jobs;
  params.capacity = capacity;
  params.max_length = 5;
  params.max_slack = 8;
  const auto inst = gen::random_feasible_slotted(rng, params);

  const auto minimal = active::solve_minimal_feasible(inst);
  ASSERT_TRUE(minimal.has_value());
  const auto rounding = active::solve_lp_rounding(inst);
  ASSERT_TRUE(rounding.has_value());

  std::string why;
  EXPECT_TRUE(core::check_active_schedule(inst, *minimal, &why)) << why;
  EXPECT_TRUE(core::check_active_schedule(inst, rounding->schedule, &why))
      << why;
  EXPECT_EQ(rounding->repair_opens, 0);

  // LP is a valid lower bound for both algorithms' guarantees.
  const double lp = rounding->lp_objective;
  EXPECT_GE(static_cast<double>(minimal->cost()), lp - 1e-6);
  EXPECT_LE(static_cast<double>(rounding->schedule.cost()), 2 * lp + 1e-6);
  EXPECT_LE(static_cast<double>(minimal->cost()), 3 * lp * 1.5 + 3)
      << "sanity ceiling; Theorem 1 is vs OPT >= LP";
  EXPECT_GE(minimal->cost(), inst.mass_lower_bound());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ActiveStress,
    ::testing::Values(StressParam{1, 20, 2}, StressParam{2, 20, 4},
                      StressParam{3, 35, 3}, StressParam{4, 35, 6},
                      StressParam{5, 50, 4}));

class BusyStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(BusyStress, AllAlgorithmsRespectBoundsAtScale) {
  const auto [seed, jobs, capacity] = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(seed) * 2147483647ULL);
  gen::ContinuousParams params;
  params.num_jobs = jobs;
  params.capacity = capacity;
  params.horizon = 6 + jobs / 3.0;
  const auto inst = gen::random_continuous(rng, params);

  const auto lb = busy::busy_lower_bounds(inst);
  const double profile = busy::DemandProfile(inst).cost();
  EXPECT_NEAR(profile, lb.profile, 1e-9);

  std::string why;
  for (const auto& [name, sched] :
       {std::pair{"ff", busy::first_fit(inst)},
        std::pair{"gt", busy::greedy_tracking(inst)},
        std::pair{"peel", busy::two_track_peeling(inst)},
        std::pair{"parity", busy::two_track_peeling(
                                inst, nullptr, busy::PairSplit::kParity)}}) {
    EXPECT_TRUE(core::check_busy_schedule(inst, sched, &why))
        << name << ": " << why;
    const double cost = core::busy_cost(inst, sched);
    EXPECT_GE(cost, lb.best() - 1e-6) << name;
    EXPECT_LE(cost, 4 * lb.best() + 4 * lb.mass + 1e-6)
        << name << ": sanity ceiling blown";
  }
  // Peeling variants obey the profile charging exactly.
  EXPECT_LE(core::busy_cost(inst, busy::two_track_peeling(inst)),
            2 * profile + 1e-6);

  // Preemption can only help: the preemptive 2-approx on the same jobs
  // (windows = forced intervals, so identical) may not beat mass/g.
  const auto preemptive = busy::solve_preemptive_bounded(inst);
  EXPECT_TRUE(core::check_preemptive_schedule(inst, preemptive.schedule, &why))
      << why;
  EXPECT_GE(preemptive.busy_time, inst.mass_lower_bound() - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BusyStress,
    ::testing::Values(StressParam{1, 60, 3}, StressParam{2, 60, 6},
                      StressParam{3, 120, 4}, StressParam{4, 120, 8},
                      StressParam{5, 200, 5}));

class FlexibleStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(FlexibleStress, PipelineScalesAndStaysExact) {
  const auto [seed, jobs, capacity] = GetParam();
  core::Rng rng(static_cast<std::uint64_t>(seed) * 998244353ULL);
  gen::ContinuousParams params;
  params.num_jobs = jobs;
  params.capacity = capacity;
  params.horizon = 10 + jobs / 2.0;
  params.max_slack = 1.5;
  const auto inst = gen::random_continuous(rng, params);

  const auto result = busy::schedule_flexible(inst);
  ASSERT_TRUE(result.dp_exact) << "g=infinity DP blew its state budget";
  std::string why;
  EXPECT_TRUE(core::check_busy_schedule(inst, result.schedule, &why)) << why;
  const double cost = core::busy_cost(inst, result.schedule);
  EXPECT_GE(cost, result.opt_infinity - 1e-6);
  EXPECT_LE(cost, result.opt_infinity + 2 * inst.mass_lower_bound() + 1e-6)
      << "Theorem 5 accounting: Sp(B1) <= OPT_inf, rest <= 2 mass/g";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FlexibleStress,
    ::testing::Values(StressParam{1, 25, 3}, StressParam{2, 40, 4},
                      StressParam{3, 60, 5}));

}  // namespace
}  // namespace abt
