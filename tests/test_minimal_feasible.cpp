#include "active/minimal_feasible.hpp"

#include <gtest/gtest.h>

#include "active/exact.hpp"
#include "active/feasibility.hpp"
#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"
#include "test_util.hpp"

namespace abt::active {
namespace {

using core::SlottedInstance;

TEST(MinimalFeasible, InfeasibleInstanceReturnsNullopt) {
  const SlottedInstance inst({{0, 1, 1}, {0, 1, 1}}, 1);
  EXPECT_FALSE(solve_minimal_feasible(inst).has_value());
}

TEST(MinimalFeasible, TrivialInstanceUsesExactlyNeededSlots) {
  const SlottedInstance inst({{0, 5, 2}}, 1);
  const auto sched = solve_minimal_feasible(inst);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->cost(), 2);
}

TEST(MinimalFeasible, ResultIsMinimal) {
  core::Rng rng(42);
  gen::SlottedParams params;
  params.num_jobs = 8;
  params.horizon = 12;
  params.capacity = 2;
  const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
  const auto sched = solve_minimal_feasible(inst);
  ASSERT_TRUE(sched.has_value());
  // Closing any single remaining slot must break feasibility
  // (Definition 4).
  for (std::size_t drop = 0; drop < sched->active_slots.size(); ++drop) {
    std::vector<core::SlotTime> fewer;
    for (std::size_t i = 0; i < sched->active_slots.size(); ++i) {
      if (i != drop) fewer.push_back(sched->active_slots[i]);
    }
    EXPECT_FALSE(is_feasible_with_slots(inst, fewer))
        << "slot " << sched->active_slots[drop] << " was removable";
  }
}

TEST(MinimalFeasible, Fig3InstanceHasOptimalCostG) {
  for (int g = 3; g <= 5; ++g) {
    const SlottedInstance inst = gen::fig3_instance(g);
    EXPECT_TRUE(is_feasible_with_slots(inst, gen::fig3_optimal_slots(g)));
    // g slots are also necessary: mass = 2g + (g-2)(g-2) + 2(g-2) = g*g - g + ...
    // use the library's mass bound instead of re-deriving.
    EXPECT_GE(static_cast<long>(gen::fig3_optimal_slots(g).size()),
              inst.mass_lower_bound());
  }
}

TEST(MinimalFeasible, Fig3AdversarialSetIsFeasibleAndExpensive) {
  for (int g = 3; g <= 6; ++g) {
    const SlottedInstance inst = gen::fig3_instance(g);
    const auto bad = gen::fig3_adversarial_slots(g);
    EXPECT_TRUE(is_feasible_with_slots(inst, bad));
    EXPECT_EQ(static_cast<long>(bad.size()), 3L * g - 2);
  }
}

TEST(MinimalFeasible, AllOrdersStayWithinThreeTimesOptOnFig3) {
  const int g = 4;
  const SlottedInstance inst = gen::fig3_instance(g);
  for (const CloseOrder order :
       {CloseOrder::kLeftToRight, CloseOrder::kRightToLeft,
        CloseOrder::kSparsestFirst, CloseOrder::kDensestFirst,
        CloseOrder::kRandom}) {
    MinimalFeasibleOptions options;
    options.order = order;
    const auto sched = solve_minimal_feasible(inst, options);
    ASSERT_TRUE(sched.has_value());
    EXPECT_LE(sched->cost(), 3 * g) << "Theorem 1 bound violated";
    EXPECT_GE(sched->cost(), g);
  }
}

/// Property (Theorem 1): every minimal feasible solution costs <= 3 OPT.
class MinimalVsExact : public ::testing::TestWithParam<int> {};

TEST_P(MinimalVsExact, WithinThreeTimesBruteForceOptimum) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337ULL);
  for (int trial = 0; trial < 12; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 7));
    params.horizon = 9;
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    params.max_length = 3;
    params.max_slack = 5;
    const SlottedInstance inst = gen::random_feasible_slotted(rng, params);
    const long opt = testutil::brute_force_active_opt(inst);
    ASSERT_GE(opt, 0);

    for (const CloseOrder order :
         {CloseOrder::kLeftToRight, CloseOrder::kRightToLeft,
          CloseOrder::kDensestFirst}) {
      MinimalFeasibleOptions options;
      options.order = order;
      const auto sched = solve_minimal_feasible(inst, options);
      ASSERT_TRUE(sched.has_value());
      EXPECT_LE(sched->cost(), 3 * opt) << "Theorem 1 violated";
      EXPECT_GE(sched->cost(), opt);
      std::string why;
      EXPECT_TRUE(core::check_active_schedule(inst, *sched, &why)) << why;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimalVsExact, ::testing::Range(1, 11));

}  // namespace
}  // namespace abt::active
