#include "busy/preemptive.hpp"

#include <gtest/gtest.h>

#include "busy/naive_baselines.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"
#include "lp/simplex.hpp"

namespace abt::busy {
namespace {

using core::ContinuousInstance;

/// Independent optimum for preemptive g=infinity on *integer* instances:
/// the covering LP  min sum y_t  s.t.  sum_{t in W_j} y_t >= p_j,
/// 0 <= y_t <= 1  has an interval constraint matrix, hence is integral and
/// equals the preemptive unbounded optimum.
double lp_reference_unbounded(const ContinuousInstance& inst) {
  long horizon = 0;
  for (int j = 0; j < inst.size(); ++j) {
    horizon = std::max(horizon, static_cast<long>(inst.job(j).deadline));
  }
  lp::LinearProblem p;
  for (long t = 0; t < horizon; ++t) p.add_variable(1.0);
  for (long t = 0; t < horizon; ++t) {
    p.add_row({{static_cast<int>(t), 1.0}}, lp::Sense::kLessEqual, 1.0);
  }
  for (int j = 0; j < inst.size(); ++j) {
    std::vector<std::pair<int, double>> coeffs;
    for (long t = static_cast<long>(inst.job(j).release);
         t < static_cast<long>(inst.job(j).deadline); ++t) {
      coeffs.emplace_back(static_cast<int>(t), 1.0);
    }
    p.add_row(std::move(coeffs), lp::Sense::kGreaterEqual, inst.job(j).length);
  }
  const lp::Solution s = lp::SimplexSolver().solve(p);
  EXPECT_EQ(s.status, lp::SolveStatus::kOptimal);
  return s.objective;
}

TEST(PreemptiveUnbounded, SingleJobOpensExactlyItsLength) {
  const ContinuousInstance inst({{0, 10, 3}}, 1);
  const auto sol = solve_preemptive_unbounded(inst);
  EXPECT_NEAR(sol.busy_time, 3.0, 1e-9);
  std::string why;
  EXPECT_TRUE(core::check_preemptive_schedule(
      ContinuousInstance(inst.jobs(), inst.size() + 1), sol.schedule, &why))
      << why;
}

TEST(PreemptiveUnbounded, SharedWindowReusesOpenTime) {
  // Two jobs with the same window: open max(p1, p2) with g = infinity.
  const ContinuousInstance inst({{0, 10, 4}, {0, 10, 2}}, 2);
  const auto sol = solve_preemptive_unbounded(inst);
  EXPECT_NEAR(sol.busy_time, 4.0, 1e-9);
}

TEST(PreemptiveUnbounded, PreemptionSplitsAroundFullStretch) {
  // Job A rigid [3,5); job B window [0,8) length 6: B uses [3,5) too but
  // needs 6 total -> open 6 (B preempts around nothing, runs alongside A).
  const ContinuousInstance inst({{3, 5, 2}, {0, 8, 6}}, 2);
  const auto sol = solve_preemptive_unbounded(inst);
  EXPECT_NEAR(sol.busy_time, 6.0, 1e-9);
}

TEST(PreemptiveUnbounded, DisjointWindowsAddUp) {
  const ContinuousInstance inst({{0, 3, 2}, {10, 14, 3}}, 1);
  const auto sol = solve_preemptive_unbounded(inst);
  EXPECT_NEAR(sol.busy_time, 5.0, 1e-9);
}

TEST(PreemptiveUnbounded, OpensTimeAsLateAsPossible) {
  const ContinuousInstance inst({{0, 10, 2}}, 1);
  const auto sol = solve_preemptive_unbounded(inst);
  ASSERT_EQ(sol.open.size(), 1u);
  EXPECT_NEAR(sol.open[0].lo, 8.0, 1e-9);
  EXPECT_NEAR(sol.open[0].hi, 10.0, 1e-9);
}

/// Property (Theorem 6): the greedy equals the integral covering LP on
/// integer instances.
class PreemptiveExactness : public ::testing::TestWithParam<int> {};

TEST_P(PreemptiveExactness, GreedyMatchesLpOptimum) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 4391ULL + 11);
  for (int trial = 0; trial < 6; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 7));
    std::vector<core::ContinuousJob> jobs;
    for (int i = 0; i < n; ++i) {
      const double p = static_cast<double>(rng.uniform_int(1, 4));
      const double r = static_cast<double>(rng.uniform_int(0, 6));
      const double slack = static_cast<double>(rng.uniform_int(0, 6));
      jobs.push_back({r, r + p + slack, p});
    }
    const ContinuousInstance inst(std::move(jobs), 2);
    const auto sol = solve_preemptive_unbounded(inst);
    EXPECT_NEAR(sol.busy_time, lp_reference_unbounded(inst), 1e-5)
        << "Theorem 6: lazy greedy is exact for preemptive g=infinity";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreemptiveExactness, ::testing::Range(1, 9));

/// Property (Theorem 7): bounded-g preemptive schedule is feasible and
/// within twice max(OPT_inf, mass/g) — hence within 2 OPT.
class PreemptiveBounded : public ::testing::TestWithParam<int> {};

TEST_P(PreemptiveBounded, FeasibleAndWithinTwiceLowerBound) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7717ULL + 1);
  for (int trial = 0; trial < 8; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(2, 15));
    params.capacity = static_cast<int>(rng.uniform_int(1, 4));
    params.horizon = 15;
    params.max_slack = 2.0;
    const ContinuousInstance inst = gen::random_continuous(rng, params);
    const auto sol = solve_preemptive_bounded(inst);
    std::string why;
    EXPECT_TRUE(core::check_preemptive_schedule(inst, sol.schedule, &why))
        << why;
    const double lb = std::max(sol.opt_infinity, inst.mass_lower_bound());
    EXPECT_LE(sol.busy_time, 2 * lb + 1e-6) << "Theorem 7 bound violated";
    EXPECT_GE(sol.busy_time, lb - 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreemptiveBounded, ::testing::Range(1, 9));

/// The OpenSet-backed rewrite must reproduce the frozen full-scan original
/// bit for bit: same open set, same pieces, same machines — across sizes
/// well past anything the unit tests above touch.
TEST(PreemptiveEquivalence, MatchesNaiveBaselineExactly) {
  for (const std::uint64_t seed : {21ULL, 22ULL, 23ULL, 24ULL}) {
    core::Rng rng(seed * 6689ULL);
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(40, 300));
    params.capacity = static_cast<int>(rng.uniform_int(1, 4));
    params.horizon = params.num_jobs / 6.0 + 12.0;
    params.max_slack = 2.5;
    const ContinuousInstance inst = gen::random_continuous(rng, params);

    const auto fast_u = solve_preemptive_unbounded(inst);
    const auto slow_u = naive::solve_preemptive_unbounded(inst);
    EXPECT_EQ(fast_u.busy_time, slow_u.busy_time);
    ASSERT_EQ(fast_u.open.size(), slow_u.open.size());
    for (std::size_t i = 0; i < fast_u.open.size(); ++i) {
      EXPECT_EQ(fast_u.open[i], slow_u.open[i]) << "open interval " << i;
    }

    const auto fast_b = solve_preemptive_bounded(inst);
    const auto slow_b = naive::solve_preemptive_bounded(inst);
    EXPECT_EQ(fast_b.busy_time, slow_b.busy_time);
    EXPECT_EQ(fast_b.opt_infinity, slow_b.opt_infinity);
    ASSERT_EQ(fast_b.schedule.pieces.size(), slow_b.schedule.pieces.size());
    for (std::size_t j = 0; j < fast_b.schedule.pieces.size(); ++j) {
      const auto& fp = fast_b.schedule.pieces[j];
      const auto& sp = slow_b.schedule.pieces[j];
      ASSERT_EQ(fp.size(), sp.size()) << "piece count of job " << j;
      for (std::size_t k = 0; k < fp.size(); ++k) {
        EXPECT_EQ(fp[k].machine, sp[k].machine) << "job " << j;
        EXPECT_EQ(fp[k].run, sp[k].run) << "job " << j;
      }
    }
  }
}

}  // namespace
}  // namespace abt::busy
