#include "active/multi_window.hpp"

#include <gtest/gtest.h>

#include "active/exact.hpp"
#include "active/feasibility.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

namespace abt::active {
namespace {

TEST(MultiWindow, StructuralValidation) {
  MultiWindowInstance bad({{{{0, 2}, {1, 5}}, 2}}, 1);  // overlapping windows
  EXPECT_FALSE(bad.structurally_valid());
  MultiWindowInstance tiny({{{{0, 1}}, 2}}, 1);  // window smaller than length
  EXPECT_FALSE(tiny.structurally_valid());
  MultiWindowInstance ok({{{{0, 2}, {4, 6}}, 3}}, 1);
  std::string why;
  EXPECT_TRUE(ok.structurally_valid(&why)) << why;
}

TEST(MultiWindow, CandidateSlotsUnionOfWindows) {
  const MultiWindowInstance inst({{{{0, 2}, {5, 7}}, 2}}, 1);
  const std::vector<core::SlotTime> expected = {1, 2, 6, 7};
  EXPECT_EQ(mw_candidate_slots(inst), expected);
}

TEST(MultiWindow, SplitWindowJobUsesBothPieces) {
  // 3 units across windows {1,2} and {6,7}: any 3 of those 4 slots.
  const MultiWindowInstance inst({{{{0, 2}, {5, 7}}, 3}}, 1);
  EXPECT_EQ(mw_brute_force_opt(inst), 3);
  const auto sched = mw_solve_minimal_feasible(inst);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->cost(), 3);
  std::string why;
  EXPECT_TRUE(mw_check_schedule(inst, *sched, &why)) << why;
}

TEST(MultiWindow, InfeasibleWhenWindowsOverCommitted) {
  // Two 2-unit jobs sharing a single 2-slot window, g = 1.
  const MultiWindowInstance inst({{{{0, 2}}, 2}, {{{0, 2}}, 2}}, 1);
  EXPECT_FALSE(mw_solve_minimal_feasible(inst).has_value());
  EXPECT_EQ(mw_brute_force_opt(inst), -1);
}

TEST(MultiWindow, SharedHoleForcesCooperation) {
  // Jobs can dodge each other across their window pieces (g = 1):
  // A: {1,2} or {5,6}; B: {1,2} only. OPT = 4: B takes 1,2; A takes 5,6.
  const MultiWindowInstance inst({{{{0, 2}, {4, 6}}, 2}, {{{0, 2}}, 2}}, 1);
  EXPECT_EQ(mw_brute_force_opt(inst), 4);
  const auto sched = mw_solve_minimal_feasible(inst);
  ASSERT_TRUE(sched.has_value());
  EXPECT_EQ(sched->cost(), 4);
}

TEST(MultiWindow, SingleWindowJobsMatchRegularActiveTime) {
  // A multi-window instance whose jobs all have one window must agree with
  // the single-window solver end to end.
  core::Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    gen::SlottedParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(1, 6));
    params.horizon = 8;
    params.capacity = static_cast<int>(rng.uniform_int(1, 3));
    const core::SlottedInstance single =
        gen::random_feasible_slotted(rng, params);
    std::vector<MultiWindowJob> jobs;
    for (const auto& j : single.jobs()) {
      jobs.push_back({{{j.release, j.deadline}}, j.length});
    }
    const MultiWindowInstance multi(std::move(jobs), single.capacity());
    const auto exact = solve_exact(single);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(mw_brute_force_opt(multi), exact->schedule.cost());
  }
}

/// Property: minimal feasible is feasible, minimal, and sandwiched between
/// OPT and the candidate count.
class MultiWindowRandom : public ::testing::TestWithParam<int> {};

TEST_P(MultiWindowRandom, MinimalFeasibleSandwiched) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 52711ULL);
  for (int trial = 0; trial < 10; ++trial) {
    // Random multi-window jobs over horizon 10 with 1-2 windows each.
    std::vector<MultiWindowJob> jobs;
    const int n = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < n; ++i) {
      MultiWindowJob job;
      const auto r1 = rng.uniform_int(0, 4);
      const auto d1 = rng.uniform_int(r1 + 1, r1 + 3);
      job.windows.emplace_back(r1, d1);
      if (rng.flip(0.6)) {
        const auto r2 = rng.uniform_int(d1, 8);
        const auto d2 = rng.uniform_int(r2 + 1, 10);
        job.windows.emplace_back(r2, d2);
      }
      job.length = rng.uniform_int(1, std::min<core::SlotTime>(
                                          3, job.window_slots()));
      jobs.push_back(std::move(job));
    }
    const MultiWindowInstance inst(std::move(jobs), 2);
    ASSERT_TRUE(inst.structurally_valid());

    const long opt = mw_brute_force_opt(inst);
    const auto sched = mw_solve_minimal_feasible(inst);
    ASSERT_EQ(opt >= 0, sched.has_value());
    if (!sched.has_value()) continue;

    std::string why;
    EXPECT_TRUE(mw_check_schedule(inst, *sched, &why)) << why;
    EXPECT_GE(sched->cost(), opt);
    // Minimality: removing any slot breaks it.
    for (std::size_t drop = 0; drop < sched->active_slots.size(); ++drop) {
      std::vector<core::SlotTime> fewer;
      for (std::size_t i = 0; i < sched->active_slots.size(); ++i) {
        if (i != drop) fewer.push_back(sched->active_slots[i]);
      }
      EXPECT_FALSE(mw_is_feasible_with_slots(inst, fewer));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiWindowRandom, ::testing::Range(1, 9));

}  // namespace
}  // namespace abt::active
