#include "lp/simplex.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"

namespace abt::lp {
namespace {

TEST(Simplex, SimpleTwoVariableMin) {
  // min -x - 2y st x + y <= 4, x <= 3, y <= 2  -> x=2, y=2, obj=-6.
  LinearProblem p;
  const int x = p.add_variable(-1.0);
  const int y = p.add_variable(-2.0);
  p.add_row({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 4.0);
  p.add_row({{x, 1.0}}, Sense::kLessEqual, 3.0);
  p.add_row({{y, 1.0}}, Sense::kLessEqual, 2.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -6.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(x)], 2.0, 1e-8);
  EXPECT_NEAR(s.x[static_cast<std::size_t>(y)], 2.0, 1e-8);
}

TEST(Simplex, GreaterEqualNeedsPhaseOne) {
  // min x + y st x + 2y >= 4, 3x + y >= 6 -> intersection (1.6, 1.2), obj 2.8.
  LinearProblem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(1.0);
  p.add_row({{x, 1.0}, {y, 2.0}}, Sense::kGreaterEqual, 4.0);
  p.add_row({{x, 3.0}, {y, 1.0}}, Sense::kGreaterEqual, 6.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.8, 1e-8);
}

TEST(Simplex, EqualityConstraint) {
  // min x + 3y st x + y = 5, y >= 2 -> x=3, y=2, obj=9.
  LinearProblem p;
  const int x = p.add_variable(1.0);
  const int y = p.add_variable(3.0);
  p.add_row({{x, 1.0}, {y, 1.0}}, Sense::kEqual, 5.0);
  p.add_row({{y, 1.0}}, Sense::kGreaterEqual, 2.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 9.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProblem p;
  const int x = p.add_variable(1.0);
  p.add_row({{x, 1.0}}, Sense::kLessEqual, 1.0);
  p.add_row({{x, 1.0}}, Sense::kGreaterEqual, 2.0);
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProblem p;
  const int x = p.add_variable(-1.0);
  p.add_row({{x, -1.0}}, Sense::kLessEqual, 0.0);  // x >= 0 only
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x st -x <= -3  (x >= 3).
  LinearProblem p;
  const int x = p.add_variable(1.0);
  p.add_row({{x, -1.0}}, Sense::kLessEqual, -3.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 3.0, 1e-8);
}

TEST(Simplex, EmptyProblemIsOptimal) {
  LinearProblem p;
  EXPECT_EQ(SimplexSolver().solve(p).status, SolveStatus::kOptimal);
}

TEST(Simplex, DuplicateCoefficientsAccumulate) {
  // min x st x + x >= 4 -> x = 2.
  LinearProblem p;
  const int x = p.add_variable(1.0);
  p.add_row({{x, 1.0}, {x, 1.0}}, Sense::kGreaterEqual, 4.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 2.0, 1e-8);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy: many redundant rows.
  LinearProblem p;
  const int x = p.add_variable(-1.0);
  const int y = p.add_variable(-1.0);
  for (int i = 0; i < 30; ++i) {
    p.add_row({{x, 1.0}, {y, 1.0}}, Sense::kLessEqual, 1.0);
  }
  p.add_row({{x, 1.0}}, Sense::kLessEqual, 1.0);
  const Solution s = SimplexSolver().solve(p);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, -1.0, 1e-8);
}

/// Property: on random feasible-by-construction LPs, the returned solution
/// satisfies every constraint and its objective is no worse than a sample of
/// random feasible points.
class SimplexRandom : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandom, OptimalDominatesRandomFeasiblePoints) {
  core::Rng rng(static_cast<std::uint64_t>(GetParam()) * 1000003ULL);
  for (int trial = 0; trial < 25; ++trial) {
    const int nvars = static_cast<int>(rng.uniform_int(1, 5));
    LinearProblem p;
    for (int v = 0; v < nvars; ++v) {
      p.add_variable(rng.uniform_real(-2.0, 2.0));
    }
    // Rows of the form a'x <= b with a >= 0 and b >= 0: x = 0 is feasible,
    // and adding box rows keeps it bounded.
    const int rows = static_cast<int>(rng.uniform_int(1, 6));
    for (int r = 0; r < rows; ++r) {
      std::vector<std::pair<int, double>> coeffs;
      for (int v = 0; v < nvars; ++v) {
        coeffs.emplace_back(v, rng.uniform_real(0.0, 3.0));
      }
      p.add_row(std::move(coeffs), Sense::kLessEqual,
                rng.uniform_real(0.0, 10.0));
    }
    for (int v = 0; v < nvars; ++v) {
      p.add_row({{v, 1.0}}, Sense::kLessEqual, rng.uniform_real(0.5, 5.0));
    }
    const Solution s = SimplexSolver().solve(p);
    ASSERT_EQ(s.status, SolveStatus::kOptimal);
    std::string why;
    EXPECT_TRUE(is_feasible(p, s.x, 1e-6, &why)) << why;

    // Random feasible points (rejection sampling) cannot beat the optimum.
    for (int probe = 0; probe < 50; ++probe) {
      std::vector<double> x(static_cast<std::size_t>(nvars));
      for (auto& xi : x) xi = rng.uniform_real(0.0, 5.0);
      if (!is_feasible(p, x, 1e-9)) continue;
      EXPECT_GE(objective_value(p, x), s.objective - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom, ::testing::Range(1, 7));

}  // namespace
}  // namespace abt::lp
