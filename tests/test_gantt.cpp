#include "report/gantt.hpp"

#include <gtest/gtest.h>

namespace abt::report {
namespace {

TEST(Gantt, ActiveChartMarksUnitsWindowsAndActiveSlots) {
  const core::SlottedInstance inst({{0, 3, 2}, {1, 4, 1}}, 2);
  core::ActiveSchedule sched;
  sched.active_slots = {2, 3};
  sched.job_slots = {{2, 3}, {3}};
  const std::string chart = render_active_gantt(inst, sched);
  // Job 0: window slots 1..3, units at 2,3 -> ".##"
  EXPECT_NE(chart.find(".## |"), std::string::npos) << chart;
  // Footer carets under slots 2 and 3.
  EXPECT_NE(chart.find(" ^^ "), std::string::npos) << chart;
  EXPECT_NE(chart.find("job 1"), std::string::npos);
}

TEST(Gantt, BusyChartOneRowPerMachine) {
  const core::ContinuousInstance inst({{0, 2, 2}, {2, 4, 2}, {0, 4, 4}}, 1);
  core::BusySchedule sched;
  sched.placements = {{0, 0.0}, {0, 2.0}, {1, 0.0}};
  const std::string chart = render_busy_gantt(inst, sched, 8);
  EXPECT_NE(chart.find("m0 |"), std::string::npos) << chart;
  EXPECT_NE(chart.find("m1 |"), std::string::npos) << chart;
  // Machine 0 shows job 0 then job 1 back to back: "00001111".
  EXPECT_NE(chart.find("00001111"), std::string::npos) << chart;
  // Machine 1 shows job 2 across the full width.
  EXPECT_NE(chart.find("22222222"), std::string::npos) << chart;
}

TEST(Gantt, OverlapMarkedWithStar) {
  const core::ContinuousInstance inst({{0, 2, 2}, {0, 2, 2}}, 2);
  core::BusySchedule sched;
  sched.placements = {{0, 0.0}, {0, 0.0}};
  const std::string chart = render_busy_gantt(inst, sched, 4);
  EXPECT_NE(chart.find("****"), std::string::npos) << chart;
}

TEST(Gantt, EmptyInputsYieldEmptyCharts) {
  const core::ContinuousInstance empty({}, 1);
  core::BusySchedule sched;
  EXPECT_TRUE(render_busy_gantt(empty, sched).empty());
}

}  // namespace
}  // namespace abt::report
