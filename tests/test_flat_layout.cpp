// PR 6 flat data-layout equivalence suite: the rewritten sweep structures
// (core::FlatOccupancyIndex, core::FlatIntervalSet) must be bit-exact
// against their frozen std::map predecessors under randomized insert/query
// fuzzing, the drivers built on them must reproduce the frozen solvers
// placement for placement over the replay corpus in data/, and the simplex
// cancellation hook must stop an LP solve mid-iteration.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "active/lp_rounding.hpp"
#include "busy/first_fit.hpp"
#include "busy/naive_baselines.hpp"
#include "busy/online.hpp"
#include "busy/preemptive.hpp"
#include "core/io.hpp"
#include "core/rng.hpp"
#include "core/run_context.hpp"
#include "core/sweep.hpp"
#include "engine/adapters.hpp"
#include "gen/random_instances.hpp"
#include "lp/simplex.hpp"

namespace abt {
namespace {

using core::Interval;
using core::JobId;
using core::RealTime;

// ---------------------------------------------------------------------------
// FlatOccupancyIndex vs the frozen MapOccupancyIndex.

/// Random query endpoints: mostly near the occupied region, sometimes far
/// outside it, sometimes exactly on a previously used coordinate.
double random_point(core::Rng& rng, const std::vector<double>& used) {
  const auto pick = rng.uniform_int(0, 9);
  if (pick < 3 && !used.empty()) {
    return used[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(used.size()) - 1))];
  }
  if (pick < 5) {
    // Grid coordinates force exact-equality splits on both structures.
    return 0.25 * static_cast<double>(rng.uniform_int(-8, 168));
  }
  return rng.uniform_real(-2.0, 42.0);
}

TEST(FlatOccupancyIndex, FuzzMatchesFrozenMapBitExact) {
  core::Rng rng(20260806);
  // One flat index reused across trials through clear() — this is the
  // machine-pool recycling path, and it deliberately leaves stale leaves
  // in the max-tree that the next trial must never observe.
  core::FlatOccupancyIndex flat;
  for (int trial = 0; trial < 120; ++trial) {
    flat.clear();
    busy::naive::MapOccupancyIndex map;
    std::vector<double> used;
    // Every eighth trial goes deep enough (several hundred breakpoints)
    // to force repeated block splits, a multi-block directory, and tree
    // range-max queries spanning whole interior blocks.
    const int inserts = (trial % 8 == 0)
                            ? static_cast<int>(rng.uniform_int(150, 400))
                            : static_cast<int>(rng.uniform_int(1, 60));
    for (int k = 0; k < inserts; ++k) {
      double lo = random_point(rng, used);
      double hi = random_point(rng, used);
      if (hi < lo) std::swap(lo, hi);
      if (hi == lo) hi = lo + rng.uniform_real(0.01, 3.0);
      used.push_back(lo);
      used.push_back(hi);
      flat.insert({lo, hi});
      map.insert({lo, hi});
      ASSERT_EQ(flat.size(), map.size());
      ASSERT_EQ(flat.steps(), map.steps()) << "trial " << trial << " insert "
                                           << k;

      for (int q = 0; q < 8; ++q) {
        double qlo = random_point(rng, used);
        double qhi = random_point(rng, used);
        if (rng.uniform_int(0, 7) != 0 && qhi < qlo) std::swap(qlo, qhi);
        ASSERT_EQ(flat.max_coverage_in(qlo, qhi),
                  map.max_coverage_in(qlo, qhi))
            << "trial " << trial << " query [" << qlo << ", " << qhi << ")";
        ASSERT_EQ(flat.covered_measure_in(qlo, qhi),
                  map.covered_measure_in(qlo, qhi))
            << "trial " << trial << " query [" << qlo << ", " << qhi << ")";
        // The fused probe must agree with both split probes, bit for bit.
        double probe_covered = 0.0;
        ASSERT_EQ(flat.probe(qlo, qhi, &probe_covered),
                  map.max_coverage_in(qlo, qhi))
            << "trial " << trial << " query [" << qlo << ", " << qhi << ")";
        ASSERT_EQ(probe_covered, map.covered_measure_in(qlo, qhi))
            << "trial " << trial << " query [" << qlo << ", " << qhi << ")";
      }
    }
  }
}

TEST(FlatOccupancyIndex, EmptyAndDegenerateQueries) {
  core::FlatOccupancyIndex flat;
  EXPECT_EQ(flat.max_coverage_in(0.0, 10.0), 0);
  EXPECT_EQ(flat.covered_measure_in(0.0, 10.0), 0.0);
  flat.insert({1.0, 2.0});
  EXPECT_EQ(flat.max_coverage_in(5.0, 5.0), 0);   // empty range
  EXPECT_EQ(flat.max_coverage_in(2.0, 1.0), 0);   // inverted range
  EXPECT_EQ(flat.max_coverage_in(1.5, 1.5), 0);   // empty inside coverage
  flat.insert({});                                 // empty interval: no-op
  EXPECT_EQ(flat.size(), 1);
}

// ---------------------------------------------------------------------------
// FlatIntervalSet vs the frozen MapOpenSet.

TEST(FlatIntervalSet, FuzzMatchesFrozenMapBitExact) {
  core::Rng rng(20260807);
  core::FlatIntervalSet flat;
  for (int trial = 0; trial < 120; ++trial) {
    flat.clear();
    busy::naive::MapOpenSet map;
    std::vector<double> used;
    const int inserts = static_cast<int>(rng.uniform_int(1, 50));
    for (int k = 0; k < inserts; ++k) {
      double lo = random_point(rng, used);
      double hi = random_point(rng, used);
      if (hi < lo) std::swap(lo, hi);
      if (hi == lo) hi = lo + rng.uniform_real(0.01, 2.0);
      // Occasionally butt-joint against an existing endpoint to exercise
      // the kMergeEps coalescing on both sides.
      if (rng.uniform_int(0, 3) == 0 && !flat.intervals().empty()) {
        const auto& ivs = flat.intervals();
        const Interval& base = ivs[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(ivs.size()) - 1))];
        lo = base.hi;
        hi = lo + rng.uniform_real(0.01, 2.0);
      }
      used.push_back(lo);
      used.push_back(hi);
      flat.insert({lo, hi});
      map.insert({lo, hi});
      ASSERT_EQ(flat.intervals(), map.intervals())
          << "trial " << trial << " insert " << k;

      for (int q = 0; q < 6; ++q) {
        double qlo = random_point(rng, used);
        double qhi = random_point(rng, used);
        if (qhi < qlo) std::swap(qlo, qhi);
        const Interval w{qlo, qhi};
        ASSERT_EQ(flat.measure_in(w), map.measure_in(w));
        ASSERT_EQ(flat.covered_in(w), map.covered_in(w));
        ASSERT_EQ(flat.free_in(w), map.free_in(w));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Replay corpus: drivers on flat structures vs frozen full solvers, over
// every committed continuous instance in data/.

std::vector<core::ProblemInstance> corpus_continuous_instances() {
  const std::vector<std::string> files = {
      "continuous_interval.txt", "fig6_tracking_tight.txt",
      "weighted_interval.txt",   "weighted_flexible.txt",
      "multi_window.txt",        "slotted_small.txt",
      "fig3_minimal_tight.txt",
  };
  std::vector<core::ProblemInstance> out;
  engine::register_instance_codecs();  // extended kinds live in the corpus
  for (const std::string& name : files) {
    std::ifstream in(std::string(ABT_DATA_DIR) + "/" + name);
    if (!in.is_open()) continue;  // not every kind lives in the corpus
    std::string error;
    auto parsed = core::parse_instance(in, &error);
    EXPECT_TRUE(parsed.has_value()) << name << ": " << error;
    if (!parsed.has_value()) continue;
    if (parsed->family == core::Family::kBusy &&
        parsed->kind == core::InstanceKind::kStandard) {
      out.push_back(std::move(*parsed));
    }
  }
  return out;
}

void expect_same_schedule(const core::BusySchedule& a,
                          const core::BusySchedule& b,
                          const std::string& what) {
  ASSERT_EQ(a.placements.size(), b.placements.size()) << what;
  for (std::size_t i = 0; i < a.placements.size(); ++i) {
    EXPECT_EQ(a.placements[i].machine, b.placements[i].machine)
        << what << " job " << i;
    EXPECT_EQ(a.placements[i].start, b.placements[i].start)
        << what << " job " << i;
  }
}

TEST(ReplayCorpus, FlatDriversMatchFrozenSolvers) {
  const auto instances = corpus_continuous_instances();
  ASSERT_FALSE(instances.empty())
      << "no continuous standard instances under " << ABT_DATA_DIR;
  for (const auto& pi : instances) {
    const core::ContinuousInstance& inst = pi.continuous;
    if (inst.all_interval_jobs(1e-6)) {
      expect_same_schedule(busy::first_fit(inst), busy::naive::first_fit(inst),
                           "first_fit");
      for (const auto policy :
           {busy::OnlinePolicy::kFirstFit, busy::OnlinePolicy::kBestFit,
            busy::OnlinePolicy::kNextFit}) {
        expect_same_schedule(busy::schedule_online(inst, policy),
                             busy::naive::schedule_online(inst, policy),
                             "online");
      }
    }
    if (inst.structurally_valid()) {
      const auto fast = busy::solve_preemptive_bounded(inst);
      const auto slow = busy::naive::solve_preemptive_bounded(inst);
      EXPECT_EQ(fast.busy_time, slow.busy_time);
      ASSERT_EQ(fast.schedule.pieces.size(), slow.schedule.pieces.size());
      for (std::size_t j = 0; j < fast.schedule.pieces.size(); ++j) {
        ASSERT_EQ(fast.schedule.pieces[j].size(),
                  slow.schedule.pieces[j].size())
            << "job " << j;
        for (std::size_t k = 0; k < fast.schedule.pieces[j].size(); ++k) {
          EXPECT_EQ(fast.schedule.pieces[j][k].machine,
                    slow.schedule.pieces[j][k].machine);
          EXPECT_EQ(fast.schedule.pieces[j][k].run,
                    slow.schedule.pieces[j][k].run);
        }
      }
    }
  }
}

TEST(ReplayCorpus, RandomizedDriversMatchFrozenSolvers) {
  core::Rng rng(6061);
  for (int trial = 0; trial < 20; ++trial) {
    gen::ContinuousParams params;
    params.num_jobs = static_cast<int>(rng.uniform_int(5, 120));
    params.capacity = static_cast<int>(rng.uniform_int(1, 4));
    const auto inst = gen::random_continuous(rng, params);
    expect_same_schedule(busy::first_fit(inst), busy::naive::first_fit(inst),
                         "first_fit");
    for (const auto policy :
         {busy::OnlinePolicy::kFirstFit, busy::OnlinePolicy::kBestFit,
          busy::OnlinePolicy::kNextFit}) {
      expect_same_schedule(busy::schedule_online(inst, policy),
                           busy::naive::schedule_online(inst, policy),
                           "online");
    }
  }
}

// ---------------------------------------------------------------------------
// LP cancellation: the simplex poll and its RunContext plumbing.

/// An LP whose phase 1 needs one pivot per row — enough iterations that the
/// every-64 poll is guaranteed to fire.
lp::LinearProblem long_phase1_lp(int n) {
  lp::LinearProblem problem;
  for (int i = 0; i < n; ++i) {
    const int v = problem.add_variable(1.0);
    problem.add_row({{v, 1.0}}, lp::Sense::kEqual, 1.0);
  }
  return problem;
}

TEST(LpCancellation, SimplexStopsWhenShouldStopTrips) {
  const lp::LinearProblem problem = long_phase1_lp(128);

  lp::SimplexSolver::Options options;
  options.should_stop = [] { return true; };
  const lp::Solution cancelled = lp::SimplexSolver(options).solve(problem);
  EXPECT_EQ(cancelled.status, lp::SolveStatus::kCancelled);

  const lp::Solution normal = lp::SimplexSolver().solve(problem);
  ASSERT_EQ(normal.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(normal.objective, 128.0, 1e-6);
}

TEST(LpCancellation, LpRoundingSurfacesCancelledContext) {
  // 80 unit jobs with tight unit windows: feasible, and LP1's phase 1 must
  // drive one artificial per demand row out of the basis, so the solve
  // runs long enough to hit the cancellation poll.
  std::vector<core::SlottedJob> jobs;
  for (int j = 0; j < 80; ++j) {
    jobs.push_back({/*release=*/j, /*deadline=*/j + 1, /*length=*/1});
  }
  const core::SlottedInstance inst(jobs, /*capacity=*/1);

  core::CancelSource source;
  source.cancel();
  core::RunContext ctx;
  ctx.set_cancel_token(source.token());
  const auto result = active::solve_lp_rounding(inst, &ctx);
  ASSERT_TRUE(result.has_value()) << "cancelled is an engaged result";
  EXPECT_TRUE(result->cancelled);

  core::RunContext unlimited;
  const auto full = active::solve_lp_rounding(inst, &unlimited);
  ASSERT_TRUE(full.has_value());
  EXPECT_FALSE(full->cancelled);
  EXPECT_EQ(full->schedule.cost(), 80);
}

}  // namespace
}  // namespace abt
