#include "core/interval.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace abt::core {
namespace {

TEST(Interval, BasicsLengthContainsOverlap) {
  const Interval a{1.0, 3.0};
  EXPECT_DOUBLE_EQ(a.length(), 2.0);
  EXPECT_FALSE(a.empty());
  EXPECT_TRUE(a.contains(1.0));
  EXPECT_TRUE(a.contains(2.9));
  EXPECT_FALSE(a.contains(3.0)) << "half-open on the right";
  EXPECT_FALSE(a.contains(0.999));
  EXPECT_TRUE(a.overlaps({2.0, 4.0}));
  EXPECT_FALSE(a.overlaps({3.0, 4.0})) << "touching intervals do not overlap";
  EXPECT_TRUE((Interval{2.0, 2.0}).empty());
}

TEST(Interval, UnionMergesOverlapsAndTouching) {
  const auto merged =
      interval_union({{0, 1}, {1, 2}, {3, 4}, {3.5, 5}, {10, 9}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].hi, 2.0);
  EXPECT_DOUBLE_EQ(merged[1].lo, 3.0);
  EXPECT_DOUBLE_EQ(merged[1].hi, 5.0);
}

TEST(Interval, UnionOfEmptyAndSingle) {
  EXPECT_TRUE(interval_union({}).empty());
  const auto one = interval_union({{2, 7}});
  ASSERT_EQ(one.size(), 1u);
  EXPECT_DOUBLE_EQ(one[0].length(), 5.0);
}

TEST(Interval, SpanVersusMass) {
  const std::vector<Interval> ivs = {{0, 2}, {1, 3}, {5, 6}};
  EXPECT_DOUBLE_EQ(span_of(ivs), 4.0);  // [0,3) + [5,6)
  EXPECT_DOUBLE_EQ(mass_of(ivs), 5.0);  // 2 + 2 + 1
}

TEST(Interval, MassCountsMultiplicity) {
  const std::vector<Interval> ivs = {{0, 2}, {0, 2}, {0, 2}};
  EXPECT_DOUBLE_EQ(mass_of(ivs), 6.0);
  EXPECT_DOUBLE_EQ(span_of(ivs), 2.0);
}

TEST(Interval, EventPointsAreSortedDistinct) {
  const std::vector<Interval> ivs = {{0, 2}, {1, 3}, {1, 3}, {2, 4}};
  const auto pts = event_points(ivs);
  const std::vector<RealTime> expected = {0, 1, 2, 3, 4};
  EXPECT_EQ(pts, expected);
}

TEST(Interval, CoverageAtMidpoint) {
  const std::vector<Interval> ivs = {{0, 2}, {1, 3}, {2, 4}};
  EXPECT_EQ(coverage_at(ivs, 1.0, 2.0), 2);
  EXPECT_EQ(coverage_at(ivs, 0.0, 1.0), 1);
  EXPECT_EQ(coverage_at(ivs, 3.0, 4.0), 1);
}

TEST(IntervalProperty, SpanNeverExceedsMassAndUnionIsDisjoint) {
  Rng rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<Interval> ivs;
    const int count = static_cast<int>(rng.uniform_int(0, 12));
    for (int i = 0; i < count; ++i) {
      const double lo = rng.uniform_real(0, 20);
      ivs.push_back({lo, lo + rng.uniform_real(0, 5)});
    }
    EXPECT_LE(span_of(ivs), mass_of(ivs) + 1e-9);
    const auto merged = interval_union(ivs);
    for (std::size_t i = 1; i < merged.size(); ++i) {
      EXPECT_GT(merged[i].lo, merged[i - 1].hi)
          << "union pieces must be disjoint and separated";
    }
    double merged_total = 0;
    for (const auto& iv : merged) merged_total += iv.length();
    EXPECT_NEAR(merged_total, span_of(ivs), 1e-9);
  }
}

}  // namespace
}  // namespace abt::core
