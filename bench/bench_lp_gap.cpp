// E3 — Section 3.5: the LP relaxation's integrality gap approaches 2. On
// the gap family the fractional optimum is g + 1 while the integral optimum
// is 2g; the LP-rounding algorithm therefore cannot beat factor 2 in
// general, matching Theorem 2.
#include <iostream>

#include "active/exact.hpp"
#include "active/lp_model.hpp"
#include "active/lp_rounding.hpp"
#include "bench_util.hpp"
#include "gen/gadgets.hpp"

int main() {
  using namespace abt;
  bench::banner("E3 / Section 3.5",
                "LP integrality gap: fractional optimum g+1 vs integral "
                "optimum 2g; gap 2g/(g+1) -> 2. The rounded solution always "
                "stays within 2x the LP value (Theorem 2).");

  report::Table table({"g", "LP*", "IP* (=2g)", "gap", "rounded cost",
                       "rounded/LP*"});
  for (int g = 2; g <= 12; g += 2) {
    const core::SlottedInstance inst = gen::lp_gap_instance(g);

    const active::ActiveTimeLp model(inst);
    const active::ActiveLpSolution lp = active::solve_active_lp(model);

    // Integral optimum: each of the g slot pairs must open both slots
    // (g+1 unit jobs in 2 slots of capacity g), verified exactly for small
    // g by branch and bound.
    double ip = 2.0 * g;
    if (g <= 4) {
      const auto exact = active::solve_exact(inst);
      ip = static_cast<double>(exact->schedule.cost());
    }

    const auto rounded = active::solve_lp_rounding(inst);

    table.add_row(
        {std::to_string(g), report::Table::num(lp.objective),
         report::Table::num(ip, 0), report::Table::num(ip / lp.objective),
         std::to_string(rounded->schedule.cost()),
         report::Table::num(static_cast<double>(rounded->schedule.cost()) /
                            lp.objective)});
  }
  table.print(std::cout);
  std::cout << "\npaper: gap = 2g/(g+1) -> 2 as g -> infinity.\n";
  return 0;
}
