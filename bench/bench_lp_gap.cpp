// E3 — Section 3.5: the LP relaxation's integrality gap approaches 2. On
// the gap family the fractional optimum is g + 1 while the integral optimum
// is 2g; the LP-rounding algorithm therefore cannot beat factor 2 in
// general, matching Theorem 2.
#include <iostream>

#include "bench_util.hpp"
#include "gen/gadgets.hpp"

int main() {
  using namespace abt;
  bench::banner("E3 / Section 3.5",
                "LP integrality gap: fractional optimum g+1 vs integral "
                "optimum 2g; gap 2g/(g+1) -> 2. The rounded solution always "
                "stays within 2x the LP value (Theorem 2).");

  report::Table table({"g", "LP*", "IP* (=2g)", "gap", "rounded cost",
                       "rounded/LP*"});
  for (int g = 2; g <= 12; g += 2) {
    const core::ProblemInstance inst =
        core::make_instance(gen::lp_gap_instance(g));

    // Registry run of the rounding; its LP1 optimum arrives as the
    // lp_objective stat, the cost is checker-validated.
    const core::Solution rounded =
        bench::checked_run("active/lp-rounding", inst);
    const double lp_objective = rounded.stat("lp_objective");

    // Integral optimum: each of the g slot pairs must open both slots
    // (g+1 unit jobs in 2 slots of capacity g), verified by branch and
    // bound while the instance is inside the exact solver's size gate.
    double ip = 2.0 * g;
    if (g <= 3) ip = bench::solver_cost("active/exact", inst);

    table.add_row(
        {std::to_string(g), report::Table::num(lp_objective),
         report::Table::num(ip, 0), report::Table::num(ip / lp_objective),
         report::Table::num(rounded.cost, 0),
         report::Table::num(rounded.cost / lp_objective)});
  }
  table.print(std::cout);
  std::cout << "\npaper: gap = 2g/(g+1) -> 2 as g -> infinity.\n";
  return 0;
}
