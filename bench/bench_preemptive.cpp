// E10 — Theorems 6 and 7: preemptive busy time. The unbounded greedy is
// exact (verified against the integral covering LP); the bounded-g
// algorithm stays within 2x max(OPT_inf, mass/g) and is usually far below.
#include <iostream>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E10 / Theorems 6-7: preemptive busy time",
      "Bounded-g preemptive 2-approximation vs its lower bound "
      "max(OPT_inf, mass/g) across workload shapes. Theorem 7 bound: 2.");

  report::Table table({"n", "g", "slack", "trials", "ratio mean", "ratio max",
                       "OPT_inf share"});
  core::Rng rng(607);

  struct Config {
    int n;
    int g;
    double slack;
  };
  for (const auto& [n, g, slack] :
       {Config{10, 2, 0.5}, Config{20, 3, 1.0}, Config{40, 4, 2.0},
        Config{80, 5, 3.0}, Config{160, 8, 4.0}}) {
    report::RatioStats ratio;
    report::RatioStats span_share;
    const int trials = 8;
    for (int t = 0; t < trials; ++t) {
      gen::ContinuousParams params;
      params.num_jobs = n;
      params.capacity = g;
      params.horizon = 10 + n / 3.0;
      params.max_slack = slack;
      const core::ProblemInstance inst =
          core::make_instance(gen::random_continuous(rng, params));
      // Registry run: checker-validated, with the Thm 7 lower bound and
      // OPT_inf reported as solution stats.
      const core::Solution sol = bench::checked_run("busy/preemptive", inst);
      const double lb = sol.stat("lb");
      ratio.add(sol.cost / lb);
      span_share.add(sol.stat("opt_inf") / lb);
    }
    table.add_row({std::to_string(n), std::to_string(g),
                   report::Table::num(slack, 1), std::to_string(trials),
                   report::Table::num(ratio.mean()),
                   report::Table::num(ratio.max()),
                   report::Table::num(span_share.mean())});
  }
  table.print(std::cout);
  std::cout << "\npaper: Theorem 6 gives the exact unbounded greedy (tested "
               "against the covering LP); Theorem 7 bounds the bounded-g "
               "cost by 2x the lower bound.\n";
  return 0;
}
