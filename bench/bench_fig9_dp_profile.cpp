// E7 — Fig 9 + Lemma 7: the g=infinity DP output's demand profile can cost
// twice the profile of the optimal busy-time structure (and never more).
// Sweeps g: profile(adversarial span-optimal freeze) vs profile(busy-time
// optimal freeze) -> ratio 2. Also runs the library's own DP to show it
// lands on a span-optimal freeze.
#include <iostream>

#include "bench_util.hpp"
#include "busy/demand_profile.hpp"
#include "busy/dp_unbounded.hpp"
#include "core/interval.hpp"
#include "gen/gadgets.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E7 / Fig 9 + Lemma 7",
      "Demand profile of the span-minimizing DP output vs the optimal "
      "structure's profile. Paper: ratio (2g-1+g(g-1)) / (g + (g^2+g-2)/2) "
      "-> 2 as eps -> 0 and g grows.");

  report::Table table(
      {"g", "eps", "profile(DP freeze)", "profile(OPT structure)", "ratio",
       "own DP span", "adv span"});
  for (int g = 2; g <= 12; g += 2) {
    const double eps = 0.02 / g;
    const auto adversarial = gen::fig9_adversarial_freeze(g, eps);
    const auto optimal = gen::fig9_optimal_freeze(g, eps);
    const double adv_profile = busy::DemandProfile(adversarial).cost();
    const double opt_profile = busy::DemandProfile(optimal).cost();

    // The library's own DP on the flexible instance: span-optimal, hence
    // it must match the adversarial span.
    const auto own = busy::solve_unbounded(gen::fig9_instance(g, eps));
    const double adv_span = core::span_of(adversarial.forced_intervals());

    table.add_row({std::to_string(g), report::Table::num(eps, 4),
                   report::Table::num(adv_profile),
                   report::Table::num(opt_profile),
                   report::Table::num(adv_profile / opt_profile),
                   report::Table::num(own.busy_time),
                   report::Table::num(adv_span)});
  }
  table.print(std::cout);
  std::cout << "\npaper: the DP output's profile is at most 2x the optimal "
               "structure's profile (Lemma 7), tight on this family.\n";
  return 0;
}
