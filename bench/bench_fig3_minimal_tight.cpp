// E2 — Fig 3 + Theorem 1: any minimal feasible solution is a
// 3-approximation, and the bound is tight. Sweeps g over the Fig 3 family
// (OPT = g).
//
// Finding of this reproduction: the slot set the paper's prose illustrates
// (slots 2..3g-1, cost 3g-2) is feasible but NOT set-minimal — closing
// slots in left-to-right order from it walks all the way down to OPT,
// because the flow check may reassign jobs (slot 2g retains spare
// capacity). The tightness itself is nevertheless real: the densest-first
// closing order produces a genuinely minimal solution of cost 3g - 2
// (ratio -> 3), by closing the flexible middle capacity first and
// stranding the two long jobs outside.
#include <iostream>

#include "active/feasibility.hpp"
#include "active/minimal_feasible.hpp"
#include "bench_util.hpp"
#include "core/slotted_instance.hpp"
#include "gen/gadgets.hpp"

namespace {

/// Minimalizes a feasible slot set by left-to-right closing.
std::vector<abt::core::SlotTime> minimalize(
    const abt::core::SlottedInstance& inst,
    std::vector<abt::core::SlotTime> slots) {
  for (std::size_t i = 0; i < slots.size();) {
    std::vector<abt::core::SlotTime> trial = slots;
    trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
    if (abt::active::is_feasible_with_slots(inst, trial)) {
      slots = std::move(trial);
    } else {
      ++i;
    }
  }
  return slots;
}

}  // namespace

int main() {
  using namespace abt;
  bench::banner(
      "E2 / Fig 3 + Theorem 1",
      "Minimal feasible solutions are 3-approximate and the factor is "
      "tight: on the Fig 3 family OPT = g and the densest-first closing "
      "order strands at a minimal solution of cost 3g-2 -> ratio 3. The "
      "paper's illustrated slot set (cost 3g-2) is feasible but not "
      "set-minimal; minimalizing it escapes to OPT (see EXPERIMENTS.md).");

  report::Table table({"g", "OPT", "paper set", "minimalized(paper set)",
                       "densest-first", "ratio", "left-to-right",
                       "right-to-left"});
  double last_ratio = 0;
  for (int g = 3; g <= 24; g += 3) {
    const core::SlottedInstance inst = gen::fig3_instance(g);
    const double opt = static_cast<double>(gen::fig3_optimal_slots(g).size());

    const auto paper_set = gen::fig3_adversarial_slots(g);
    const auto paper_minimalized = minimalize(inst, paper_set);

    auto run = [&](active::CloseOrder order) {
      active::MinimalFeasibleOptions options;
      options.order = order;
      return static_cast<double>(
          active::solve_minimal_feasible(inst, options)->cost());
    };
    const double densest = run(active::CloseOrder::kDensestFirst);
    last_ratio = densest / opt;

    table.add_row({std::to_string(g), report::Table::num(opt, 0),
                   std::to_string(paper_set.size()),
                   std::to_string(paper_minimalized.size()),
                   report::Table::num(densest, 0),
                   report::Table::num(densest / opt),
                   report::Table::num(run(active::CloseOrder::kLeftToRight), 0),
                   report::Table::num(run(active::CloseOrder::kRightToLeft), 0)});
  }
  table.print(std::cout);
  std::cout << "\npaper: minimal feasible can cost 3g-2 vs OPT g -> ratio 3; "
               "measured worst minimal ratio at g=24: "
            << report::Table::num(last_ratio) << " (approaches 3).\n";
  return 0;
}
