// E4 — Theorem 1 vs Theorem 2 on random workloads: average-case comparison
// of the minimal-feasible 3-approximation and the LP-rounding
// 2-approximation against the exact optimum (branch and bound) and the LP
// lower bound. The shape to reproduce: LP rounding dominates minimal
// feasible, both stay well under their worst-case factors on average.
//
// Solvers run through the registry (bench_util): shared applicability,
// timing and checker validation with abt_solve and the tests.
#include <iostream>

#include "bench_util.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E4 / Theorems 1 and 2 on random instances",
      "Per (n, g): mean and max ratio to exact OPT over random feasible "
      "slotted instances; LP value shown as the rounding's certificate.");

  report::Table table({"n", "g", "trials", "minimal mean", "minimal max",
                       "rounding mean", "rounding max", "LP/OPT mean"});

  struct Config {
    int n;
    int g;
  };
  const Config configs[] = {{6, 1}, {6, 2}, {8, 2}, {8, 3}, {10, 2}, {10, 4}};
  core::Rng rng(20140623);  // SPAA 2014 vintage seed

  for (const auto& [n, g] : configs) {
    report::RatioStats minimal;
    report::RatioStats rounding;
    report::RatioStats lp_tightness;
    const int trials = 20;
    for (int t = 0; t < trials; ++t) {
      gen::SlottedParams params;
      params.num_jobs = n;
      params.horizon = 12;
      params.capacity = g;
      params.max_length = 3;
      params.max_slack = 5;
      const core::ProblemInstance inst =
          core::make_instance(gen::random_feasible_slotted(rng, params));

      const double opt = bench::solver_cost("active/exact", inst);
      if (opt == 0) continue;

      const core::Solution lr = bench::checked_run("active/lp-rounding", inst);
      minimal.add(bench::solver_cost("active/minimal-feasible", inst) / opt);
      rounding.add(lr.cost / opt);
      lp_tightness.add(lr.stat("lp_objective") / opt);
    }
    table.add_row({std::to_string(n), std::to_string(g),
                   std::to_string(minimal.count()),
                   report::Table::num(minimal.mean()),
                   report::Table::num(minimal.max()),
                   report::Table::num(rounding.mean()),
                   report::Table::num(rounding.max()),
                   report::Table::num(lp_tightness.mean())});
  }
  table.print(std::cout);
  std::cout << "\npaper bounds: minimal <= 3 OPT (Thm 1), rounding <= 2 OPT "
               "(Thm 2); expect rounding <= minimal on average.\n";
  return 0;
}
