// E4 — Theorem 1 vs Theorem 2 on random workloads: average-case comparison
// of the minimal-feasible 3-approximation and the LP-rounding
// 2-approximation against the exact optimum (branch and bound) and the LP
// lower bound. The shape to reproduce: LP rounding dominates minimal
// feasible, both stay well under their worst-case factors on average.
//
// Since PR 3 the trials run through the engine's thread-pool sweep
// (bench_util::checked_sweep): active/exact rides along in every trial so
// the per-trial lower bound is the optimum, and the LP tightness is read
// back from the per-cell lp_objective stat.
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E4 / Theorems 1 and 2 on random instances",
      "Per (n, g): mean and max ratio to exact OPT over random feasible "
      "slotted instances; LP value shown as the rounding's certificate. "
      "Sweeps fan out over the engine thread pool.");

  report::Table table({"n", "g", "trials", "minimal mean", "minimal max",
                       "rounding mean", "rounding max", "LP/OPT mean"});

  struct Config {
    int n;
    int g;
  };
  const Config configs[] = {{6, 1}, {6, 2}, {8, 2}, {8, 3}, {10, 2}, {10, 4}};

  for (const auto& [n, g] : configs) {
    engine::ScenarioSpec spec;
    spec.name = "slotted";
    spec.n = n;
    spec.g = g;
    spec.seed = 20140623;  // SPAA 2014 vintage seed
    const auto sweep = bench::checked_sweep(
        spec, 20,
        {"active/minimal-feasible", "active/lp-rounding", "active/exact"});
    bench::require_every_trial(sweep, "active/exact");

    const auto& minimal =
        bench::aggregate_of(sweep, "active/minimal-feasible");
    const auto& rounding = bench::aggregate_of(sweep, "active/lp-rounding");

    // LP tightness is a per-cell stat, not an aggregate: harvest
    // lp_objective / OPT from the cells whose bound is an exact
    // certificate (zero-optimum trials are skipped by ratio_count too).
    report::RatioStats lp_tightness;
    for (const engine::RunReport& cell : sweep.cells) {
      if (cell.lower_bound.kind != "exact" || cell.lower_bound.value <= 0.0) {
        continue;
      }
      for (const core::Solution& sol : cell.solutions) {
        if (sol.solver == "active/lp-rounding" && sol.ok) {
          lp_tightness.add(sol.stat("lp_objective") / cell.lower_bound.value);
        }
      }
    }

    table.add_row({std::to_string(n), std::to_string(g),
                   std::to_string(minimal.ratio_count),
                   report::Table::num(minimal.ratio_mean),
                   report::Table::num(minimal.ratio_max),
                   report::Table::num(rounding.ratio_mean),
                   report::Table::num(rounding.ratio_max),
                   report::Table::num(lp_tightness.mean())});
  }
  table.print(std::cout);
  std::cout << "\npaper bounds: minimal <= 3 OPT (Thm 1), rounding <= 2 OPT "
               "(Thm 2); expect rounding <= minimal on average.\n";
  return 0;
}
