// Gate-measurement harness for busy/weighted-exact: reproduces the
// docs/ALGORITHMS.md worst-case table (single core, Release build) by
// sweeping n past the registered gate over the two density profiles that
// bracket the search's behavior — moderate density (horizon 6 + n/4, the
// observed worst case) and near-clique (horizon 4, the easy end: widths
// saturate g quickly, so the capacity prune bites early). Rerun after any
// change to the partition search before trusting the gate in
// WeightedExactOptions::max_jobs.
#include <algorithm>
#include <chrono>
#include <cstdio>

#include "busy/weighted.hpp"
#include "core/rng.hpp"
#include "gen/extended_instances.hpp"

namespace {

using namespace abt;

double worst_ms_at(int n, double horizon) {
  double worst = 0.0;
  for (const int g : {2, 3, 4, 6}) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      core::Rng rng(seed * 7919ULL + static_cast<std::uint64_t>(g));
      gen::WeightedParams params;
      params.num_jobs = n;
      params.capacity = g;
      params.horizon = horizon;
      const busy::WeightedInstance inst = gen::random_weighted(rng, params);
      busy::WeightedExactOptions options;
      options.max_jobs = n;  // Probe past the registered gate.
      const auto t0 = std::chrono::steady_clock::now();
      const auto sched = busy::solve_exact_weighted(inst, options);
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (!sched.has_value()) {
        std::printf("unexpected refusal at n=%d g=%d seed=%llu\n", n, g,
                    static_cast<unsigned long long>(seed));
      }
      worst = std::max(worst, ms);
    }
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("busy/weighted-exact gate sweep (worst over g in {2,3,4,6}, "
              "12 seeds each)\n");
  std::printf("%4s  %16s  %16s\n", "n", "moderate (ms)", "near-clique (ms)");
  // The n = 18 row takes ~minutes (docs table: ~60 s worst per instance).
  for (int n = 8; n <= 18; n += 2) {
    const double moderate = worst_ms_at(n, 6.0 + n / 4.0);
    const double clique = worst_ms_at(n, 4.0);
    std::printf("%4d  %16.1f  %16.1f\n", n, moderate, clique);
    std::fflush(stdout);
    if (std::max(moderate, clique) > 10000.0) break;  // runaway guard
  }
  std::printf("\nregistered gate: n <= %d (WeightedExactOptions)\n",
              busy::WeightedExactOptions{}.max_jobs);
  return 0;
}
