// E11 — substrate performance scaling (google-benchmark): max-flow
// feasibility checks, simplex LP solves, track extraction, the g=infinity
// DP and the end-to-end algorithms. Not a paper artifact (the paper has no
// running-time evaluation); establishes that the library scales to
// realistic instance sizes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include "active/feasibility.hpp"
#include "active/lp_model.hpp"
#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "busy/demand_profile.hpp"
#include "busy/dp_unbounded.hpp"
#include "busy/first_fit.hpp"
#include "busy/naive_baselines.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/online.hpp"
#include "busy/preemptive.hpp"
#include "busy/proper_cover.hpp"
#include "busy/two_track_peeling.hpp"
#include "busy/weighted.hpp"
#include "core/rng.hpp"
#include "core/run_context.hpp"
#include "engine/builtin_solvers.hpp"
#include "engine/parallel.hpp"
#include "engine/portfolio.hpp"
#include "engine/runner.hpp"
#include "engine/scratch.hpp"
#include "gen/extended_instances.hpp"
#include "gen/random_instances.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace {

using namespace abt;

core::SlottedInstance make_slotted(int n, int seed) {
  core::Rng rng(static_cast<std::uint64_t>(seed));
  gen::SlottedParams params;
  params.num_jobs = n;
  params.horizon = 4 * n;
  params.capacity = 4;
  params.max_length = 5;
  params.max_slack = 8;
  return gen::random_feasible_slotted(rng, params);
}

core::ContinuousInstance make_interval(int n, int seed, double slack = 0.0) {
  core::Rng rng(static_cast<std::uint64_t>(seed));
  gen::ContinuousParams params;
  params.num_jobs = n;
  params.capacity = 4;
  params.horizon = n / 2.0 + 10;
  params.max_slack = slack;
  return gen::random_continuous(rng, params);
}

void BM_FlowFeasibility(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 1);
  const auto slots = active::candidate_slots(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(active::is_feasible_with_slots(inst, slots));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowFeasibility)->Range(8, 256)->Complexity();

void BM_MinimalFeasible(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(active::solve_minimal_feasible(inst));
  }
}
BENCHMARK(BM_MinimalFeasible)->Range(8, 64);

void BM_ActiveLpSolve(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    const active::ActiveTimeLp model(inst);
    benchmark::DoNotOptimize(active::solve_active_lp(model));
  }
}
BENCHMARK(BM_ActiveLpSolve)->Range(4, 32);

void BM_LpRounding(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(active::solve_lp_rounding(inst));
  }
}
BENCHMARK(BM_LpRounding)->Range(4, 32);

void BM_GreedyTracking(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::greedy_tracking(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyTracking)->Range(16, 8192)->Complexity();

void BM_TwoTrackPeeling(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::two_track_peeling(inst));
  }
  state.SetComplexityN(state.range(0));
}
// Range extended to 8192 in PR 2: the LevelPeeler removed the per-level
// re-sort, so the peel loop now scales with the other sweep-backed paths.
BENCHMARK(BM_TwoTrackPeeling)->Range(16, 8192)->Complexity();

void BM_FirstFit(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::first_fit(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FirstFit)->Range(16, 8192)->Complexity();

// PR 2: release-ordered FIRSTFIT through the MachineFreeIndex — one
// O(log m) first-fit query per job instead of a per-machine probing scan.
void BM_FirstFitByRelease(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::first_fit_by_release(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FirstFitByRelease)->Range(16, 8192)->Complexity();

void BM_DemandProfile(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::DemandProfile(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DemandProfile)->Range(16, 8192)->Complexity();

// --------------------------------------------------------------------------
// Pre-sweep quadratic baselines (busy/naive_baselines.hpp, shared with the
// equivalence suite) so every BENCH_PR<k>.json records the speedup of the
// sweep engine against the original hot paths.

void BM_FirstFitNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::naive::first_fit(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FirstFitNaive)->Range(16, 4096)->Complexity();

// The pre-PR-2 two_track_peeling inner loop: re-run the one-shot
// proper_cover (fresh sort + rescan) on the remaining pool per level.
void BM_LevelPeelNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    std::vector<core::JobId> remaining(static_cast<std::size_t>(inst.size()));
    std::iota(remaining.begin(), remaining.end(), core::JobId{0});
    while (!remaining.empty()) {
      const std::vector<core::JobId> level = busy::proper_cover(inst, remaining);
      std::vector<char> taken(static_cast<std::size_t>(inst.size()), 0);
      for (core::JobId j : level) taken[static_cast<std::size_t>(j)] = 1;
      std::erase_if(remaining, [&](core::JobId j) {
        return taken[static_cast<std::size_t>(j)] != 0;
      });
      benchmark::DoNotOptimize(level);
    }
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevelPeelNaive)->Range(16, 4096)->Complexity();

// The PR-2 replacement: LevelPeeler sorts once and peels linearly.
void BM_LevelPeel(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 6);
  std::vector<core::JobId> all(static_cast<std::size_t>(inst.size()));
  std::iota(all.begin(), all.end(), core::JobId{0});
  for (auto _ : state) {
    busy::LevelPeeler peeler(inst, all);
    while (!peeler.empty()) {
      benchmark::DoNotOptimize(peeler.extract_level());
    }
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevelPeel)->Range(16, 4096)->Complexity();

void BM_DemandProfileNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::naive::demand_profile(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DemandProfileNaive)->Range(16, 4096)->Complexity();

// --------------------------------------------------------------------------
// PR 4: the online and preemptive paths moved off their quadratic scans
// (per-machine OccupancyIndex probes; OpenSet + per-piece cell lookup).
// The frozen originals stay as BM_*Naive so BENCH_PR<k>.json records the
// speedup, like the other sweep-backed paths.

void BM_OnlineFirstFit(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::schedule_online(inst, busy::OnlinePolicy::kFirstFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineFirstFit)->Range(16, 8192)->Complexity();

void BM_OnlineBestFit(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::schedule_online(inst, busy::OnlinePolicy::kBestFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineBestFit)->Range(16, 8192)->Complexity();

void BM_OnlineFirstFitNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::naive::schedule_online(inst, busy::OnlinePolicy::kFirstFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineFirstFitNaive)->Range(16, 4096)->Complexity();

void BM_OnlineBestFitNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::naive::schedule_online(inst, busy::OnlinePolicy::kBestFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineBestFitNaive)->Range(16, 2048)->Complexity();

void BM_PreemptiveBoundedNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 9, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::naive::solve_preemptive_bounded(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PreemptiveBoundedNaive)->Range(16, 2048)->Complexity();

void BM_UnboundedDp(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 8, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::solve_unbounded(inst));
  }
}
BENCHMARK(BM_UnboundedDp)->Range(4, 32);

void BM_PreemptiveBounded(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 9, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::solve_preemptive_bounded(inst));
  }
  state.SetComplexityN(state.range(0));
}
// Range extended from 256 to 8192 in PR 4: the OpenSet removed the
// per-job full-scan/re-union, so the path now scales with the others.
BENCHMARK(BM_PreemptiveBounded)->Range(16, 8192)->Complexity();

void BM_WeightedExactBudget(benchmark::State& state) {
  // Anytime incumbent quality vs budget: one fixed weighted instance past
  // the measured exact gate (n = 22 vs gate 14), solved repeatedly under
  // the budget given as the range argument (ms). The interesting output
  // is the counters — the incumbent's cost and its certified gap against
  // the mass/span bound shrink as the budget grows — while the measured
  // time simply tracks the budget.
  core::Rng rng(7);
  gen::WeightedParams params;
  params.num_jobs = 22;
  params.capacity = 3;
  params.horizon = 6.0 + 22 / 4.0;  // the gate sweep's moderate density
  const busy::WeightedInstance inst = gen::random_weighted(rng, params);
  const double budget_ms = static_cast<double>(state.range(0));
  const core::ContinuousInstance unweighted = inst.unweighted();
  double cost = 0.0;
  double proven = 0.0;
  for (auto _ : state) {
    const core::RunContext ctx =
        core::RunContext::with_budget_ms(budget_ms).restarted();
    busy::WeightedExactOptions options;
    options.max_jobs = inst.size();
    options.context = &ctx;
    const auto result = busy::solve_exact_weighted_anytime(inst, options);
    cost = core::busy_cost(unweighted, result->schedule);
    proven = result->proven_optimal ? 1.0 : 0.0;
    benchmark::DoNotOptimize(result);
  }
  const double lb = std::max(inst.mass_lower_bound(), inst.span_lower_bound());
  state.counters["incumbent_cost"] = cost;
  state.counters["gap"] = lb > 0.0 ? (cost - lb) / lb : 0.0;
  state.counters["proven_optimal"] = proven;
}
BENCHMARK(BM_WeightedExactBudget)
    ->Arg(5)
    ->Arg(20)
    ->Arg(80)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

// --- Scheduler overhead: persistent work-stealing pool vs the frozen ---
// --- PR 6 spawn-per-call engine (the naive denominator).              ---

namespace naive_sched {

// The PR 6 engine, frozen verbatim so BENCH_PR<k>.json keeps an honest
// denominator: a pool is constructed PER parallel_for call, every cell is
// a heap-allocated closure pushed through one mutex-guarded queue, and the
// workers are joined when the call ends.
class SpawnPool {
 public:
  explicit SpawnPool(int threads) {
    const int count = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ~SpawnPool() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    work_ready_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  void submit(std::function<void()> task) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      queue_.push_back(std::move(task));
    }
    work_ready_.notify_one();
  }

  void wait_idle() {
    std::unique_lock<std::mutex> lock(mutex_);
    all_idle_.wait(lock, [this] { return queue_.empty() && busy_ == 0; });
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        work_ready_.wait(lock,
                         [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        ++busy_;
      }
      task();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        --busy_;
        if (queue_.empty() && busy_ == 0) all_idle_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t busy_ = 0;
  bool stopping_ = false;
};

void parallel_for(int threads, std::size_t items,
                  const std::function<void(std::size_t)>& fn) {
  if (threads <= 1 || items <= 1) {
    for (std::size_t i = 0; i < items; ++i) {
      engine::begin_cell();
      fn(i);
    }
    return;
  }
  SpawnPool pool(static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), items)));
  for (std::size_t i = 0; i < items; ++i) {
    pool.submit([&fn, i] {
      engine::begin_cell();
      fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace naive_sched

/// The many-small-cell workload both scheduler benchmarks dispatch: cell i
/// mixes its index through a few dozen integer rounds and stores the
/// result into slot i. The cell body is ~100 ns on purpose — this
/// benchmark isolates dispatch cost (spawn, wakeup, queue traffic,
/// per-cell allocation), which is what the two engines differ in; the
/// end-to-end view with real solver cells is BM_CampaignThroughput.
struct SmallCellWorkload {
  explicit SmallCellWorkload(std::size_t cells) : results(cells, 0) {}

  std::vector<std::uint64_t> results;

  [[nodiscard]] std::function<void(std::size_t)> fn() {
    return [this](std::size_t i) {
      std::uint64_t h = static_cast<std::uint64_t>(i) * 0x9E3779B97F4A7C15ULL;
      for (int round = 0; round < 32; ++round) {
        h ^= h >> 33;
        h *= 0xFF51AFD7ED558CCDULL;
      }
      results[i] = h;
      benchmark::DoNotOptimize(results[i]);
    };
  }
};

constexpr std::size_t kSchedulerCells = 1024;

void BM_SchedulerOverhead(benchmark::State& state) {
  // Persistent work-stealing pool (PR 7): workers are spawned once and
  // reused across every iteration; cells are claimed as index ranges off
  // per-worker deques, no per-cell allocation.
  const int threads = static_cast<int>(state.range(0));
  engine::ThreadPool::shared().resize(engine::resolve_threads(threads));
  SmallCellWorkload workload(kSchedulerCells);
  const auto fn = workload.fn();
  for (auto _ : state) {
    engine::parallel_for(threads, kSchedulerCells, fn);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSchedulerCells));
}
BENCHMARK(BM_SchedulerOverhead)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SchedulerOverheadNaive(benchmark::State& state) {
  // Frozen PR 6 engine on the identical workload: thread spawn + join per
  // call, one heap closure per cell through a single locked queue.
  const int threads = static_cast<int>(state.range(0));
  SmallCellWorkload workload(kSchedulerCells);
  const auto fn = workload.fn();
  for (auto _ : state) {
    naive_sched::parallel_for(threads, kSchedulerCells, fn);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSchedulerCells));
}
BENCHMARK(BM_SchedulerOverheadNaive)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_CampaignThroughput(benchmark::State& state) {
  // End-to-end sweep through the real engine (registry dispatch, scratch
  // arenas, aggregation) at the given thread count — the macro view of
  // what the scheduler rebuild buys a sweep of cheap cells.
  const int threads = static_cast<int>(state.range(0));
  engine::ScenarioSpec spec;
  spec.name = "interval";
  spec.n = 12;
  spec.g = 3;
  spec.seed = 7;
  engine::SweepOptions options;
  options.trials = 32;
  options.threads = threads;
  options.run.solvers = {"busy/first-fit", "busy/greedy-tracking"};
  const core::SolverRegistry& registry = engine::shared_registry();
  std::size_t cells = 0;
  for (auto _ : state) {
    std::string error;
    const auto report = engine::run_sweep(registry, spec, options, &error);
    if (!report.has_value()) state.SkipWithError(error.c_str());
    cells = static_cast<std::size_t>(options.trials) *
            report->aggregates.size();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells));
}
BENCHMARK(BM_CampaignThroughput)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- Portfolio racing (PR 8): race wall clock vs the contestants run ---
// --- standalone. Two regimes, each measuring the claim where it holds. ---

/// The pair-A instance: weighted n=14 (the measured exact gate), where the
/// exact solver completes in tens of ms and the greedies answer in
/// microseconds but cannot certify the acceptance gap — so the exact run
/// IS the best single contestant, and the race must not cost measurably
/// more than it.
core::ProblemInstance race_gate_instance() {
  engine::ScenarioSpec spec;
  spec.name = "weighted";
  spec.n = 14;
  spec.g = 3;
  spec.seed = 7;
  return *engine::make_scenario(spec);
}

/// The pair-B instance: weighted n=24, past the gate — the exact solver
/// burns its whole budget while narrow/wide answers in microseconds, so
/// under checker-only acceptance the race ends as fast as its quickest
/// contestant and the budget-bound exact run is the worst single.
core::ProblemInstance race_budget_instance() {
  engine::ScenarioSpec spec;
  spec.name = "weighted";
  spec.n = 24;
  spec.g = 3;
  spec.seed = 7;
  return *engine::make_scenario(spec);
}

void BM_PortfolioRace(benchmark::State& state) {
  // Certified-gap acceptance: only the exact contestant can win (the
  // greedies' gaps against the combinatorial bound exceed 2%), so the
  // race's wall clock must track the exact solver's standalone wall
  // clock — the claim is race <= 1.15x best single contestant.
  const core::ProblemInstance inst = race_gate_instance();
  const core::SolverRegistry& registry = engine::shared_registry();
  const std::vector<engine::RaceEntry> entries = {
      {"busy/weighted-exact", 0.0},
      {"busy/weighted-narrow-wide", 0.0},
      {"busy/weighted-first-fit", 0.0}};
  engine::RaceOptions options;
  options.threads = static_cast<int>(state.range(0));
  options.accept_gap = 0.02;
  double winner_is_exact = 0.0;
  for (auto _ : state) {
    const engine::RaceReport report =
        engine::race(registry, inst, entries, core::RunContext(), options);
    if (report.winner < 0) state.SkipWithError("race had no winner");
    winner_is_exact =
        report.rows[static_cast<std::size_t>(report.winner)].exact ? 1.0
                                                                   : 0.0;
    benchmark::DoNotOptimize(report);
  }
  state.counters["winner_is_exact"] = winner_is_exact;
}
BENCHMARK(BM_PortfolioRace)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PortfolioBestSingle(benchmark::State& state) {
  // The denominator for BM_PortfolioRace: the winning contestant
  // standalone (the exact solver, completed, no race around it).
  const core::ProblemInstance inst = race_gate_instance();
  const core::SolverRegistry& registry = engine::shared_registry();
  for (auto _ : state) {
    const core::Solution sol =
        registry.run("busy/weighted-exact", inst, core::RunContext());
    if (!sol.exact) state.SkipWithError("exact run did not complete");
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_PortfolioBestSingle)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PortfolioRaceFirstAcceptable(benchmark::State& state) {
  // Checker-only acceptance on the past-the-gate instance: the greedy
  // answers in microseconds, wins, and the race retires the budget-bound
  // exact contestant at its next poll — wall clock far below the worst
  // single contestant (BM_PortfolioWorstSingle's full budget).
  const core::ProblemInstance inst = race_budget_instance();
  const core::SolverRegistry& registry = engine::shared_registry();
  const std::vector<engine::RaceEntry> entries = {
      {"busy/weighted-narrow-wide", 0.0}, {"busy/weighted-exact", 0.0}};
  engine::RunOptions run_options;
  run_options.budget_ms = 200.0;
  engine::RaceOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const core::RunContext parent =
        engine::make_run_context(run_options).restarted();
    const engine::RaceReport report =
        engine::race(registry, inst, entries, parent, options);
    if (report.winner < 0) state.SkipWithError("race had no winner");
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PortfolioRaceFirstAcceptable)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_PortfolioWorstSingle(benchmark::State& state) {
  // The contrast for BM_PortfolioRaceFirstAcceptable: the slowest
  // contestant standalone — the exact solver running its entire 200 ms
  // budget on the past-the-gate instance.
  const core::ProblemInstance inst = race_budget_instance();
  const core::SolverRegistry& registry = engine::shared_registry();
  engine::RunOptions run_options;
  run_options.budget_ms = 200.0;
  for (auto _ : state) {
    const core::RunContext ctx =
        engine::make_run_context(run_options).restarted();
    const core::Solution sol =
        registry.run("busy/weighted-exact", inst, ctx);
    benchmark::DoNotOptimize(sol);
  }
}
BENCHMARK(BM_PortfolioWorstSingle)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- abtd service (PR 10): loopback daemon roundtrips against the same ---
// --- solve run directly in-process, and the cache replay hit path.     ---

/// One weighted instance per seed, shared by the daemon and the direct
/// denominator so both sides solve identical work.
core::ProblemInstance service_instance(int seed) {
  engine::ScenarioSpec spec;
  spec.name = "weighted";
  spec.n = 24;
  spec.g = 3;
  spec.seed = seed;
  return *engine::make_scenario(spec);
}

/// A ready-to-send solve frame for service_instance(seed): one cheap
/// greedy solver, JSON response, generous budget so admission control
/// never shrinks it mid-benchmark.
service::Frame service_frame(int seed) {
  service::SolveRequest request;
  request.solvers = {"busy/weighted-first-fit"};
  request.budget_ms = 1000.0;
  request.instance = service_instance(seed);
  std::ostringstream payload;
  std::string error;
  if (!service::write_solve_payload(payload, request, &error)) {
    return {};
  }
  service::Frame frame;
  frame.type = service::FrameType::kSolve;
  frame.payload = payload.str();
  return frame;
}

constexpr int kServiceFrames = 64;

void BM_ServiceThroughput(benchmark::State& state) {
  // Full daemon roundtrip per request: connect, frame, admission, queue,
  // dispatcher solve through the engine, JSON render, response frame.
  // The cache is sized to one entry while kServiceFrames distinct
  // requests cycle, so every iteration takes the compute path — the
  // cache replay path is BM_CacheHitLatency.
  service::ServiceConfig config;
  config.tcp_port = 0;
  config.threads = 1;
  config.queue_soft = 64;
  config.queue_cap = 128;
  config.cache_entries = 1;
  service::Server server(engine::shared_registry(), config);
  std::string error;
  if (!server.start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  std::vector<service::Frame> frames;
  frames.reserve(kServiceFrames);
  for (int seed = 0; seed < kServiceFrames; ++seed) {
    frames.push_back(service_frame(seed));
  }
  const service::Address address = server.address();
  std::size_t next = 0;
  for (auto _ : state) {
    const auto exchange =
        service::client_roundtrip(address, frames[next], &error);
    next = (next + 1) % kServiceFrames;
    if (!exchange.has_value() ||
        exchange->final.type != service::FrameType::kOk) {
      state.SkipWithError("daemon roundtrip failed");
      break;
    }
    benchmark::DoNotOptimize(exchange->final.payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  server.stop();
}
BENCHMARK(BM_ServiceThroughput)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_ServiceDirectSolve(benchmark::State& state) {
  // The in-process denominator for BM_ServiceThroughput: the identical
  // solver on the identical instance cycle, no socket, no framing, no
  // response rendering. The ratio is the daemon's per-request overhead.
  const core::SolverRegistry& registry = engine::shared_registry();
  std::vector<core::ProblemInstance> instances;
  instances.reserve(kServiceFrames);
  for (int seed = 0; seed < kServiceFrames; ++seed) {
    instances.push_back(service_instance(seed));
  }
  std::size_t next = 0;
  for (auto _ : state) {
    const core::Solution sol = registry.run(
        "busy/weighted-first-fit", instances[next], core::RunContext());
    next = (next + 1) % kServiceFrames;
    benchmark::DoNotOptimize(sol);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServiceDirectSolve)->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_CacheHitLatency(benchmark::State& state) {
  // The replay path: one request primed once, then served bit-identically
  // from the SolutionCache on every iteration — connect, frame, key
  // lookup, cached payload write-back. No solver runs after the prime.
  service::ServiceConfig config;
  config.tcp_port = 0;
  config.threads = 1;
  service::Server server(engine::shared_registry(), config);
  std::string error;
  if (!server.start(&error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  const service::Frame frame = service_frame(7);
  const service::Address address = server.address();
  const auto primed = service::client_roundtrip(address, frame, &error);
  if (!primed.has_value() ||
      primed->final.type != service::FrameType::kOk) {
    state.SkipWithError("cache prime failed");
    server.stop();
    return;
  }
  for (auto _ : state) {
    const auto exchange = service::client_roundtrip(address, frame, &error);
    if (!exchange.has_value() || !exchange->final.has_flag("cached")) {
      state.SkipWithError("expected a cache replay");
      break;
    }
    benchmark::DoNotOptimize(exchange->final.payload);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  server.stop();
}
BENCHMARK(BM_CacheHitLatency)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
