// E11 — substrate performance scaling (google-benchmark): max-flow
// feasibility checks, simplex LP solves, track extraction, the g=infinity
// DP and the end-to-end algorithms. Not a paper artifact (the paper has no
// running-time evaluation); establishes that the library scales to
// realistic instance sizes.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "active/feasibility.hpp"
#include "active/lp_model.hpp"
#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "busy/demand_profile.hpp"
#include "busy/dp_unbounded.hpp"
#include "busy/first_fit.hpp"
#include "busy/naive_baselines.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/online.hpp"
#include "busy/preemptive.hpp"
#include "busy/proper_cover.hpp"
#include "busy/two_track_peeling.hpp"
#include "busy/weighted.hpp"
#include "core/rng.hpp"
#include "core/run_context.hpp"
#include "gen/extended_instances.hpp"
#include "gen/random_instances.hpp"

namespace {

using namespace abt;

core::SlottedInstance make_slotted(int n, int seed) {
  core::Rng rng(static_cast<std::uint64_t>(seed));
  gen::SlottedParams params;
  params.num_jobs = n;
  params.horizon = 4 * n;
  params.capacity = 4;
  params.max_length = 5;
  params.max_slack = 8;
  return gen::random_feasible_slotted(rng, params);
}

core::ContinuousInstance make_interval(int n, int seed, double slack = 0.0) {
  core::Rng rng(static_cast<std::uint64_t>(seed));
  gen::ContinuousParams params;
  params.num_jobs = n;
  params.capacity = 4;
  params.horizon = n / 2.0 + 10;
  params.max_slack = slack;
  return gen::random_continuous(rng, params);
}

void BM_FlowFeasibility(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 1);
  const auto slots = active::candidate_slots(inst);
  for (auto _ : state) {
    benchmark::DoNotOptimize(active::is_feasible_with_slots(inst, slots));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowFeasibility)->Range(8, 256)->Complexity();

void BM_MinimalFeasible(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(active::solve_minimal_feasible(inst));
  }
}
BENCHMARK(BM_MinimalFeasible)->Range(8, 64);

void BM_ActiveLpSolve(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 3);
  for (auto _ : state) {
    const active::ActiveTimeLp model(inst);
    benchmark::DoNotOptimize(active::solve_active_lp(model));
  }
}
BENCHMARK(BM_ActiveLpSolve)->Range(4, 32);

void BM_LpRounding(benchmark::State& state) {
  const auto inst = make_slotted(static_cast<int>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(active::solve_lp_rounding(inst));
  }
}
BENCHMARK(BM_LpRounding)->Range(4, 32);

void BM_GreedyTracking(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::greedy_tracking(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_GreedyTracking)->Range(16, 8192)->Complexity();

void BM_TwoTrackPeeling(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::two_track_peeling(inst));
  }
  state.SetComplexityN(state.range(0));
}
// Range extended to 8192 in PR 2: the LevelPeeler removed the per-level
// re-sort, so the peel loop now scales with the other sweep-backed paths.
BENCHMARK(BM_TwoTrackPeeling)->Range(16, 8192)->Complexity();

void BM_FirstFit(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::first_fit(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FirstFit)->Range(16, 8192)->Complexity();

// PR 2: release-ordered FIRSTFIT through the MachineFreeIndex — one
// O(log m) first-fit query per job instead of a per-machine probing scan.
void BM_FirstFitByRelease(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::first_fit_by_release(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FirstFitByRelease)->Range(16, 8192)->Complexity();

void BM_DemandProfile(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::DemandProfile(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DemandProfile)->Range(16, 8192)->Complexity();

// --------------------------------------------------------------------------
// Pre-sweep quadratic baselines (busy/naive_baselines.hpp, shared with the
// equivalence suite) so every BENCH_PR<k>.json records the speedup of the
// sweep engine against the original hot paths.

void BM_FirstFitNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::naive::first_fit(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FirstFitNaive)->Range(16, 4096)->Complexity();

// The pre-PR-2 two_track_peeling inner loop: re-run the one-shot
// proper_cover (fresh sort + rescan) on the remaining pool per level.
void BM_LevelPeelNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 6);
  for (auto _ : state) {
    std::vector<core::JobId> remaining(static_cast<std::size_t>(inst.size()));
    std::iota(remaining.begin(), remaining.end(), core::JobId{0});
    while (!remaining.empty()) {
      const std::vector<core::JobId> level = busy::proper_cover(inst, remaining);
      std::vector<char> taken(static_cast<std::size_t>(inst.size()), 0);
      for (core::JobId j : level) taken[static_cast<std::size_t>(j)] = 1;
      std::erase_if(remaining, [&](core::JobId j) {
        return taken[static_cast<std::size_t>(j)] != 0;
      });
      benchmark::DoNotOptimize(level);
    }
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevelPeelNaive)->Range(16, 4096)->Complexity();

// The PR-2 replacement: LevelPeeler sorts once and peels linearly.
void BM_LevelPeel(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 6);
  std::vector<core::JobId> all(static_cast<std::size_t>(inst.size()));
  std::iota(all.begin(), all.end(), core::JobId{0});
  for (auto _ : state) {
    busy::LevelPeeler peeler(inst, all);
    while (!peeler.empty()) {
      benchmark::DoNotOptimize(peeler.extract_level());
    }
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LevelPeel)->Range(16, 4096)->Complexity();

void BM_DemandProfileNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::naive::demand_profile(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DemandProfileNaive)->Range(16, 4096)->Complexity();

// --------------------------------------------------------------------------
// PR 4: the online and preemptive paths moved off their quadratic scans
// (per-machine OccupancyIndex probes; OpenSet + per-piece cell lookup).
// The frozen originals stay as BM_*Naive so BENCH_PR<k>.json records the
// speedup, like the other sweep-backed paths.

void BM_OnlineFirstFit(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::schedule_online(inst, busy::OnlinePolicy::kFirstFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineFirstFit)->Range(16, 8192)->Complexity();

void BM_OnlineBestFit(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::schedule_online(inst, busy::OnlinePolicy::kBestFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineBestFit)->Range(16, 8192)->Complexity();

void BM_OnlineFirstFitNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::naive::schedule_online(inst, busy::OnlinePolicy::kFirstFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineFirstFitNaive)->Range(16, 4096)->Complexity();

void BM_OnlineBestFitNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        busy::naive::schedule_online(inst, busy::OnlinePolicy::kBestFit));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_OnlineBestFitNaive)->Range(16, 2048)->Complexity();

void BM_PreemptiveBoundedNaive(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 9, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::naive::solve_preemptive_bounded(inst));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PreemptiveBoundedNaive)->Range(16, 2048)->Complexity();

void BM_UnboundedDp(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 8, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::solve_unbounded(inst));
  }
}
BENCHMARK(BM_UnboundedDp)->Range(4, 32);

void BM_PreemptiveBounded(benchmark::State& state) {
  const auto inst = make_interval(static_cast<int>(state.range(0)), 9, 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(busy::solve_preemptive_bounded(inst));
  }
  state.SetComplexityN(state.range(0));
}
// Range extended from 256 to 8192 in PR 4: the OpenSet removed the
// per-job full-scan/re-union, so the path now scales with the others.
BENCHMARK(BM_PreemptiveBounded)->Range(16, 8192)->Complexity();

void BM_WeightedExactBudget(benchmark::State& state) {
  // Anytime incumbent quality vs budget: one fixed weighted instance past
  // the measured exact gate (n = 22 vs gate 14), solved repeatedly under
  // the budget given as the range argument (ms). The interesting output
  // is the counters — the incumbent's cost and its certified gap against
  // the mass/span bound shrink as the budget grows — while the measured
  // time simply tracks the budget.
  core::Rng rng(7);
  gen::WeightedParams params;
  params.num_jobs = 22;
  params.capacity = 3;
  params.horizon = 6.0 + 22 / 4.0;  // the gate sweep's moderate density
  const busy::WeightedInstance inst = gen::random_weighted(rng, params);
  const double budget_ms = static_cast<double>(state.range(0));
  const core::ContinuousInstance unweighted = inst.unweighted();
  double cost = 0.0;
  double proven = 0.0;
  for (auto _ : state) {
    const core::RunContext ctx =
        core::RunContext::with_budget_ms(budget_ms).restarted();
    busy::WeightedExactOptions options;
    options.max_jobs = inst.size();
    options.context = &ctx;
    const auto result = busy::solve_exact_weighted_anytime(inst, options);
    cost = core::busy_cost(unweighted, result->schedule);
    proven = result->proven_optimal ? 1.0 : 0.0;
    benchmark::DoNotOptimize(result);
  }
  const double lb = std::max(inst.mass_lower_bound(), inst.span_lower_bound());
  state.counters["incumbent_cost"] = cost;
  state.counters["gap"] = lb > 0.0 ? (cost - lb) / lb : 0.0;
  state.counters["proven_optimal"] = proven;
}
BENCHMARK(BM_WeightedExactBudget)
    ->Arg(5)
    ->Arg(20)
    ->Arg(80)
    ->Arg(320)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
