// E5 — Fig 6/7 + Theorem 5: GREEDYTRACKING is 3-approximate and the family
// of Fig 6 drives it toward the factor. The adversarial g=infinity freeze
// (Fig 7) pins two flexible jobs inside every gadget; GreedyTracking's
// track extraction then mixes the shifted unit groups across bundles.
#include <iostream>

#include "bench_util.hpp"
#include "busy/first_fit.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/greedy_tracking.hpp"
#include "core/busy_schedule.hpp"
#include "gen/gadgets.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E5 / Fig 6-7 + Theorem 5",
      "GreedyTracking on the adversarially frozen Fig 6 family vs the "
      "intended optimum 2g + 2 - eps. Paper: ratio approaches 3 under "
      "adversarial tie-breaking; FIRSTFIT shown as the 4-approx baseline.");

  report::Table table({"g", "eps", "OPT", "Fig7 packing", "Fig7 ratio",
                       "GreedyTracking", "GT ratio", "FirstFit",
                       "pipeline(own DP)"});
  for (int g = 2; g <= 10; g += 2) {
    const double eps = 0.5 / g;
    const core::ContinuousInstance frozen = gen::fig7_adversarial_freeze(g, eps);
    const double opt = gen::fig6_optimal_cost(g, eps);

    // The paper's Fig 7 packing: a feasible GREEDYTRACKING outcome under
    // adversarial tie-breaking, verified by the schedule checker.
    const gen::PackedInstance fig7 = gen::fig7_paper_packing(g, eps);
    std::string why;
    if (!core::check_busy_schedule(fig7.instance, fig7.schedule, &why)) {
      std::cerr << "Fig 7 packing infeasible: " << why << "\n";
      return 1;
    }
    const double paper = core::busy_cost(fig7.instance, fig7.schedule);

    const double gt = core::busy_cost(frozen, busy::greedy_tracking(frozen));
    const double ff = core::busy_cost(frozen, busy::first_fit(frozen));

    // Full pipeline on the flexible instance with the library's own DP
    // (tie-breaking may differ from the adversarial freeze).
    const core::ContinuousInstance flexible = gen::fig6_instance(g, eps);
    const auto pipeline = busy::schedule_flexible(flexible);
    const double pipe = core::busy_cost(flexible, pipeline.schedule);

    table.add_row({std::to_string(g), report::Table::num(eps),
                   report::Table::num(opt), report::Table::num(paper),
                   report::Table::num(paper / opt), report::Table::num(gt),
                   report::Table::num(gt / opt), report::Table::num(ff / opt),
                   report::Table::num(pipe / opt)});
  }
  table.print(std::cout);
  std::cout << "\npaper: GreedyTracking <= 3 OPT always (Theorem 5); Fig 7's "
               "packing costs (6 - o(eps))g vs OPT 2g + 2 - eps -> ratio 3. "
               "The library's deterministic tie-breaking lands far below "
               "(see EXPERIMENTS.md).\n";
  return 0;
}
