// E6 — Fig 8 + Theorem 3/8: the 2-approximation for interval jobs is tight.
// TwoTrackPeeling (the library's implementation of the Kumar-Rudra /
// Alicherry-Bhatia charging) outputs 2 + eps on the Fig 8 instance whose
// optimum is 1 + eps; the ratio approaches 2 as eps -> 0.
#include <iostream>

#include "bench_util.hpp"
#include "busy/demand_profile.hpp"
#include "busy/exact_busy.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/busy_schedule.hpp"
#include "gen/gadgets.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E6 / Fig 8 + Theorem 3",
      "Interval-job 2-approximation, tight example (g=2): OPT = 1 + eps, "
      "TwoTrackPeeling = 2 + eps(+eps'), ratio -> 2 as eps -> 0. Cost is "
      "always within 2x the demand profile.");

  report::Table table({"eps", "OPT", "peeling", "ratio", "2*profile",
                       "GreedyTracking"});
  for (double eps = 0.32; eps > 0.004; eps /= 2) {
    const double eps_prime = eps / 2.5;
    const core::ContinuousInstance inst = gen::fig8_instance(eps, eps_prime);

    const auto exact = busy::solve_exact_interval(inst);
    const double opt = core::busy_cost(inst, *exact);
    const double peel = core::busy_cost(inst, busy::two_track_peeling(inst));
    const double gt = core::busy_cost(inst, busy::greedy_tracking(inst));
    const double profile = busy::DemandProfile(inst).cost();

    table.add_row({report::Table::num(eps, 4), report::Table::num(opt, 4),
                   report::Table::num(peel, 4), report::Table::num(peel / opt),
                   report::Table::num(2 * profile, 4),
                   report::Table::num(gt, 4)});
  }
  table.print(std::cout);
  std::cout << "\npaper: algorithms of [11]/[1] output 2 + eps vs OPT 1 + "
               "eps; factor 2 is tight (Theorem 8).\n";
  return 0;
}
