// E8 — Fig 10-12 + Theorem 10: converting flexible jobs via the
// g=infinity DP and then running a profile-charging 2-approximation is a
// 4-approximation, and the factor is tight. On the Fig 10 family the
// adversarial freeze forces TwoTrackPeeling to ~4g - 2 while OPT is ~g;
// GreedyTracking (Theorem 5 pipeline) stays within 3.
#include <iostream>

#include "bench_util.hpp"
#include "busy/demand_profile.hpp"
#include "busy/first_fit.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/busy_schedule.hpp"
#include "gen/gadgets.hpp"

namespace {

/// Busy time of the intended optimal solution for the Fig 10 family:
/// standalone unit job + flexibles on one machine (1), per gadget one
/// machine for the unit block (1) and one for each eps flank packing.
double fig10_optimal_cost(int g, double eps) {
  return 1.0 + (g - 1) * (1.0 + 2 * eps);
}

}  // namespace

int main() {
  using namespace abt;
  bench::banner(
      "E8 / Fig 10-12 + Theorem 10",
      "Flexible jobs via DP + profile-charging algorithm: factor 4, tight. "
      "Adversarial freeze (Fig 11) + padding drives TwoTrackPeeling to "
      "~(4g-2)/g; the GreedyTracking pipeline stays <= 3.");

  report::Table table({"g", "OPT", "Fig12 packing", "Fig12 ratio",
                       "parity split", "parity ratio", "consolidating",
                       "GT ratio"});
  for (int g = 2; g <= 10; g += 2) {
    const double eps = 0.05 / g;
    const double eps_prime = eps / 3;
    const auto adversarial = gen::fig10_adversarial_freeze(g, eps, eps_prime);
    const double opt = fig10_optimal_cost(g, eps);

    // The paper's Fig 12 run: the padded instance (Fig 11 dummies
    // included) packed the way the pair-opening 2-approximations run it —
    // four machines per gadget, each straddling both flanks. Verified
    // feasible by the checker; cost 1 + 4(g-1)(1+2 eps).
    const gen::PackedInstance fig12 =
        gen::fig12_paper_packing(g, eps, eps_prime);
    std::string why;
    if (!core::check_busy_schedule(fig12.instance, fig12.schedule, &why)) {
      std::cerr << "Fig 12 packing infeasible: " << why << "\n";
      return 1;
    }
    const double paper = core::busy_cost(fig12.instance, fig12.schedule);

    // The pair-opening variant (Kumar-Rudra parity split) on the same
    // padded instance reproduces the factor organically; the library's
    // default consolidating split does much better; GreedyTracking is the
    // paper's 3-approx.
    const auto padded = busy::pad_to_capacity_multiple(adversarial);
    const double parity = core::busy_cost(
        padded,
        busy::two_track_peeling(padded, nullptr, busy::PairSplit::kParity));
    const double peel =
        core::busy_cost(padded, busy::two_track_peeling(padded));
    const double gt =
        core::busy_cost(adversarial, busy::greedy_tracking(adversarial));

    table.add_row({std::to_string(g), report::Table::num(opt),
                   report::Table::num(paper), report::Table::num(paper / opt),
                   report::Table::num(parity), report::Table::num(parity / opt),
                   report::Table::num(peel), report::Table::num(gt / opt)});
  }
  table.print(std::cout);
  std::cout << "\npaper: the Fig 12 run costs 1 + 4(g-1) + O(eps) vs OPT "
               "g + O(eps) -> ratio 4 (Theorem 10, tight). The library's "
               "TwoTrackPeeling consolidates and stays near 2x; the "
               "GreedyTracking pipeline is 3-approximate (section 4.3).\n";
  return 0;
}
