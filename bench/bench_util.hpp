#pragma once

// Shared scaffolding for the experiment binaries. Each binary regenerates
// one of the paper's figures / in-text bounds and prints the series as a
// table. Since PR 2 the solver invocations go through the registry
// (engine/builtin_solvers): one shared path for applicability, timing and
// checker validation, so a bench can never chart an infeasible cost.

#include <iostream>
#include <string>
#include <vector>

#include "core/assert.hpp"
#include "core/solver.hpp"
#include "engine/builtin_solvers.hpp"
#include "engine/runner.hpp"
#include "report/table.hpp"

namespace abt::bench {

inline void banner(const std::string& experiment_id,
                   const std::string& claim) {
  std::cout << "\n=== " << experiment_id << " ===\n" << claim << "\n\n";
}

/// The registry every experiment binary draws its solvers from.
inline const core::SolverRegistry& registry() {
  return engine::shared_registry();
}

/// Runs a registered solver and insists on a checker-validated result.
/// Experiments measure costs, so a declined run or an infeasible schedule
/// is a hard error, not a data point.
inline core::Solution checked_run(const std::string& solver,
                                  const core::ProblemInstance& inst) {
  core::Solution sol = registry().run(solver, inst);
  if (!sol.ok || !sol.feasible) {
    std::cerr << "bench: solver '" << solver << "' failed: " << sol.message
              << "\n";
    ABT_ASSERT(false, "bench solver run failed its checker");
  }
  return sol;
}

inline double solver_cost(const std::string& solver,
                          const core::ProblemInstance& inst) {
  return checked_run(solver, inst).cost;
}

/// Ratio sweep over generated instances: for each trial, `make_instance`
/// produces the workload and `reference` its comparison baseline (exact
/// OPT, a lower bound, ...); each named solver contributes
/// cost / reference to its RatioStats. Trials with reference <= 0 are
/// skipped (e.g. empty optimal schedules).
template <typename MakeInstance, typename Reference>
std::vector<report::RatioStats> ratio_sweep(
    const std::vector<std::string>& solvers, int trials,
    MakeInstance make_instance, Reference reference) {
  std::vector<report::RatioStats> stats(solvers.size());
  for (int t = 0; t < trials; ++t) {
    const core::ProblemInstance inst = make_instance(t);
    const double ref = reference(inst);
    if (ref <= 0.0) continue;
    for (std::size_t s = 0; s < solvers.size(); ++s) {
      stats[s].add(solver_cost(solvers[s], inst) / ref);
    }
  }
  return stats;
}

/// Scenario trial sweep through the engine's thread pool — the same fan-out
/// / lower-bound / aggregation path as `abt_solve --trials`. Aborts when
/// the scenario fails to instantiate or any produced schedule failed its
/// checker (a bench must never chart an infeasible cost). threads = 0 uses
/// the hardware concurrency.
inline engine::SweepReport checked_sweep(const engine::ScenarioSpec& spec,
                                         int trials,
                                         std::vector<std::string> solvers = {},
                                         int threads = 0) {
  engine::SweepOptions options;
  options.trials = trials;
  options.threads = threads;
  options.run.solvers = std::move(solvers);
  std::string error;
  const auto report = engine::run_sweep(registry(), spec, options, &error);
  if (!report.has_value()) {
    std::cerr << "bench: scenario '" << spec.name << "' failed: " << error
              << "\n";
    ABT_ASSERT(false, "bench scenario failed to instantiate");
  }
  for (const engine::RunReport& cell : report->cells) {
    for (const core::Solution& sol : cell.solutions) {
      if (sol.ok && !sol.feasible) {
        std::cerr << "bench: solver '" << sol.solver
                  << "' produced an infeasible schedule: " << sol.message
                  << "\n";
        ABT_ASSERT(false, "bench sweep produced an infeasible schedule");
      }
    }
  }
  return *report;
}

/// Aggregate row of one solver in a sweep report; aborts when absent.
inline const engine::SolverAggregate& aggregate_of(
    const engine::SweepReport& report, const std::string& solver) {
  for (const engine::SolverAggregate& agg : report.aggregates) {
    if (agg.solver == solver) return agg;
  }
  std::cerr << "bench: no aggregate for solver '" << solver << "'\n";
  ABT_ASSERT(false, "bench aggregate lookup failed");
}

/// Asserts the solver produced a checker-validated result in every trial.
/// This is the guard for tables charting ratios "vs exact OPT": an exact
/// oracle that silently declines (size gate) would downgrade the per-trial
/// lower bound to a combinatorial one while the table heading still claims
/// the optimum — abort loudly instead, like checked_run used to.
inline const engine::SolverAggregate& require_every_trial(
    const engine::SweepReport& report, const std::string& solver) {
  const engine::SolverAggregate& agg = aggregate_of(report, solver);
  if (agg.feasible != report.trials) {
    std::cerr << "bench: solver '" << solver << "' validated only "
              << agg.feasible << "/" << report.trials << " trials\n";
    ABT_ASSERT(false, "bench ratio table requires every trial validated");
  }
  return agg;
}

}  // namespace abt::bench
