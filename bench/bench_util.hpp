#pragma once

// Shared helpers for the experiment binaries. Each binary regenerates one
// of the paper's figures / in-text bounds and prints the series as a table
// (see DESIGN.md section 4 for the experiment index and EXPERIMENTS.md for
// recorded paper-vs-measured values).

#include <iostream>
#include <string>

#include "report/table.hpp"

namespace abt::bench {

inline void banner(const std::string& experiment_id,
                   const std::string& claim) {
  std::cout << "\n=== " << experiment_id << " ===\n" << claim << "\n\n";
}

}  // namespace abt::bench
