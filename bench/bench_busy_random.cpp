// E9 — Section 4 on random workloads: FIRSTFIT (4-approx baseline),
// GREEDYTRACKING (3-approx, this paper) and TwoTrackPeeling (2-approx for
// interval jobs) against the exact optimum on small instances and against
// the best lower bound on larger ones. Shape to reproduce: peeling <=
// tracking <= firstfit in worst-case factor; on random data all three sit
// close to the lower bounds, with the paper's algorithm competitive.
//
// Since PR 3 the trials run through the engine's thread-pool sweep
// (bench_util::checked_sweep) — the same fan-out, lower-bound and
// aggregation path as `abt_solve --trials`, so every ratio below is
// checker-validated and reproducible from (scenario, seed).
#include <iostream>

#include "bench_util.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E9 / interval + flexible random sweep",
      "Mean/max ratio to exact OPT (small instances, interval jobs), then "
      "mean ratio to best lower bound (larger instances and flexible "
      "jobs). Sweeps fan out over the engine thread pool.");

  const auto spec = [](const char* name, int n, int g, double slack) {
    engine::ScenarioSpec s;
    s.name = name;
    s.n = n;
    s.g = g;
    s.seed = 8154;  // arXiv id vintage
    s.slack = slack;
    return s;
  };

  {
    report::Table table({"n", "g", "trials", "FF mean", "FF max", "GT mean",
                         "GT max", "Peel mean", "Peel max"});
    struct Config {
      int n;
      int g;
    };
    for (const auto& [n, g] :
         {Config{6, 2}, Config{8, 2}, Config{8, 3}, Config{10, 3}}) {
      // busy/exact rides along so every trial's lower bound is the optimum.
      const auto sweep = bench::checked_sweep(
          spec("interval", n, g, 0.0), 15,
          {"busy/first-fit", "busy/greedy-tracking", "busy/two-track-peeling",
           "busy/exact"});
      bench::require_every_trial(sweep, "busy/exact");
      const auto& ff = bench::aggregate_of(sweep, "busy/first-fit");
      const auto& gt = bench::aggregate_of(sweep, "busy/greedy-tracking");
      const auto& peel =
          bench::aggregate_of(sweep, "busy/two-track-peeling");
      table.add_row({std::to_string(n), std::to_string(g), "15",
                     report::Table::num(ff.ratio_mean),
                     report::Table::num(ff.ratio_max),
                     report::Table::num(gt.ratio_mean),
                     report::Table::num(gt.ratio_max),
                     report::Table::num(peel.ratio_mean),
                     report::Table::num(peel.ratio_max)});
    }
    std::cout << "interval jobs vs exact OPT:\n";
    table.print(std::cout);
  }

  {
    report::Table table({"n", "g", "trials", "FF/LB", "GT/LB", "Peel/LB"});
    struct Config {
      int n;
      int g;
    };
    for (const auto& [n, g] :
         {Config{40, 3}, Config{80, 4}, Config{150, 5}, Config{300, 8}}) {
      const auto sweep = bench::checked_sweep(
          spec("interval", n, g, 0.0), 5,
          {"busy/first-fit", "busy/greedy-tracking",
           "busy/two-track-peeling"});
      table.add_row(
          {std::to_string(n), std::to_string(g), "5",
           report::Table::num(
               bench::aggregate_of(sweep, "busy/first-fit").ratio_mean),
           report::Table::num(
               bench::aggregate_of(sweep, "busy/greedy-tracking").ratio_mean),
           report::Table::num(
               bench::aggregate_of(sweep, "busy/two-track-peeling")
                   .ratio_mean)});
    }
    std::cout << "\nlarger interval instances vs best lower bound:\n";
    table.print(std::cout);
  }

  {
    report::Table table({"n", "g", "slack", "trials", "GT pipeline/LB",
                         "Peel pipeline/LB", "FF pipeline/LB"});
    struct Config {
      int n;
      int g;
      double slack;
    };
    for (const auto& [n, g, slack] :
         {Config{10, 2, 1.0}, Config{14, 3, 1.5}, Config{18, 3, 2.0}}) {
      const auto sweep = bench::checked_sweep(
          spec("flexible", n, g, slack), 8,
          {"busy/pipeline-greedy-tracking", "busy/pipeline-two-track-peeling",
           "busy/pipeline-first-fit"});
      table.add_row(
          {std::to_string(n), std::to_string(g),
           report::Table::num(slack, 1), "8",
           report::Table::num(
               bench::aggregate_of(sweep, "busy/pipeline-greedy-tracking")
                   .ratio_mean),
           report::Table::num(
               bench::aggregate_of(sweep, "busy/pipeline-two-track-peeling")
                   .ratio_mean),
           report::Table::num(
               bench::aggregate_of(sweep, "busy/pipeline-first-fit")
                   .ratio_mean)});
    }
    std::cout << "\nflexible jobs through the DP pipeline (section 4.3):\n";
    table.print(std::cout);
  }

  {
    report::Table table({"n", "g", "trials", "wFF mean", "wFF max",
                         "narrow/wide mean", "narrow/wide max"});
    struct Config {
      int n;
      int g;
    };
    for (const auto& [n, g] : {Config{6, 3}, Config{8, 4}, Config{10, 4}}) {
      // busy/weighted-exact rides along: the lower bound is the optimum.
      const auto sweep = bench::checked_sweep(
          spec("weighted", n, g, 0.0), 10,
          {"busy/weighted-first-fit", "busy/weighted-narrow-wide",
           "busy/weighted-exact"});
      bench::require_every_trial(sweep, "busy/weighted-exact");
      const auto& ff = bench::aggregate_of(sweep, "busy/weighted-first-fit");
      const auto& nw =
          bench::aggregate_of(sweep, "busy/weighted-narrow-wide");
      table.add_row({std::to_string(n), std::to_string(g), "10",
                     report::Table::num(ff.ratio_mean),
                     report::Table::num(ff.ratio_max),
                     report::Table::num(nw.ratio_mean),
                     report::Table::num(nw.ratio_max)});
    }
    std::cout << "\nweighted (cumulative-width) interval jobs vs exact OPT "
                 "(Khandekar et al. [9] model):\n";
    table.print(std::cout);
  }

  std::cout << "\npaper guarantees: FF <= 4, GT <= 3 (Thm 5), Peel <= 2 "
               "(interval, Thm 3); pipeline: GT <= 3, profile algorithms "
               "<= 4 (Thm 10); weighted narrow/wide <= 5 (Khandekar).\n";
  return 0;
}
