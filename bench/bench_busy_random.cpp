// E9 — Section 4 on random workloads: FIRSTFIT (4-approx baseline),
// GREEDYTRACKING (3-approx, this paper) and TwoTrackPeeling (2-approx for
// interval jobs) against the exact optimum on small instances and against
// the best lower bound on larger ones. Shape to reproduce: peeling <=
// tracking <= firstfit in worst-case factor; on random data all three sit
// close to the lower bounds, with the paper's algorithm competitive.
//
// All solver invocations go through the registry (bench_util), sharing the
// engine's timing + checker path with abt_solve and the tests.
#include <iostream>

#include "bench_util.hpp"
#include "busy/lower_bounds.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E9 / interval + flexible random sweep",
      "Mean/max ratio to exact OPT (small instances, interval jobs), then "
      "mean ratio to best lower bound (larger instances and flexible "
      "jobs).");

  core::Rng rng(8154);  // arXiv id vintage

  const auto make_interval = [&rng](int n, int g, double horizon,
                                    double slack) {
    gen::ContinuousParams params;
    params.num_jobs = n;
    params.capacity = g;
    params.horizon = horizon;
    params.max_slack = slack;
    return core::make_instance(gen::random_continuous(rng, params));
  };

  {
    const std::vector<std::string> solvers = {
        "busy/first-fit", "busy/greedy-tracking", "busy/two-track-peeling"};
    report::Table table({"n", "g", "trials", "FF mean", "FF max", "GT mean",
                         "GT max", "Peel mean", "Peel max"});
    struct Config {
      int n;
      int g;
    };
    for (const auto& [n, g] :
         {Config{6, 2}, Config{8, 2}, Config{8, 3}, Config{10, 3}}) {
      const auto stats = bench::ratio_sweep(
          solvers, 15,
          [&](int) { return make_interval(n, g, 12.0, 0.0); },
          [](const core::ProblemInstance& inst) {
            return bench::solver_cost("busy/exact", inst);
          });
      table.add_row({std::to_string(n), std::to_string(g), "15",
                     report::Table::num(stats[0].mean()),
                     report::Table::num(stats[0].max()),
                     report::Table::num(stats[1].mean()),
                     report::Table::num(stats[1].max()),
                     report::Table::num(stats[2].mean()),
                     report::Table::num(stats[2].max())});
    }
    std::cout << "interval jobs vs exact OPT:\n";
    table.print(std::cout);
  }

  {
    const std::vector<std::string> solvers = {
        "busy/first-fit", "busy/greedy-tracking", "busy/two-track-peeling"};
    report::Table table({"n", "g", "trials", "FF/LB", "GT/LB", "Peel/LB"});
    struct Config {
      int n;
      int g;
    };
    for (const auto& [n, g] :
         {Config{40, 3}, Config{80, 4}, Config{150, 5}, Config{300, 8}}) {
      const auto stats = bench::ratio_sweep(
          solvers, 5,
          [&](int) { return make_interval(n, g, 10 + n / 4.0, 0.0); },
          [](const core::ProblemInstance& inst) {
            return busy::busy_lower_bounds(inst.continuous).best();
          });
      table.add_row({std::to_string(n), std::to_string(g), "5",
                     report::Table::num(stats[0].mean()),
                     report::Table::num(stats[1].mean()),
                     report::Table::num(stats[2].mean())});
    }
    std::cout << "\nlarger interval instances vs best lower bound:\n";
    table.print(std::cout);
  }

  {
    const std::vector<std::string> solvers = {
        "busy/pipeline-greedy-tracking", "busy/pipeline-two-track-peeling",
        "busy/pipeline-first-fit"};
    report::Table table({"n", "g", "slack", "trials", "GT pipeline/LB",
                         "Peel pipeline/LB", "FF pipeline/LB"});
    struct Config {
      int n;
      int g;
      double slack;
    };
    for (const auto& [n, g, slack] :
         {Config{10, 2, 1.0}, Config{14, 3, 1.5}, Config{18, 3, 2.0}}) {
      const auto stats = bench::ratio_sweep(
          solvers, 8,
          [&](int) { return make_interval(n, g, 16.0, slack); },
          [](const core::ProblemInstance& inst) {
            return busy::busy_lower_bounds(inst.continuous).best();
          });
      table.add_row({std::to_string(n), std::to_string(g),
                     report::Table::num(slack, 1), "8",
                     report::Table::num(stats[0].mean()),
                     report::Table::num(stats[1].mean()),
                     report::Table::num(stats[2].mean())});
    }
    std::cout << "\nflexible jobs through the DP pipeline (section 4.3):\n";
    table.print(std::cout);
  }

  std::cout << "\npaper guarantees: FF <= 4, GT <= 3 (Thm 5), Peel <= 2 "
               "(interval, Thm 3); pipeline: GT <= 3, profile algorithms "
               "<= 4 (Thm 10).\n";
  return 0;
}
