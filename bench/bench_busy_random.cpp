// E9 — Section 4 on random workloads: FIRSTFIT (4-approx baseline),
// GREEDYTRACKING (3-approx, this paper) and TwoTrackPeeling (2-approx for
// interval jobs) against the exact optimum on small instances and against
// the best lower bound on larger ones. Shape to reproduce: peeling <=
// tracking <= firstfit in worst-case factor; on random data all three sit
// close to the lower bounds, with the paper's algorithm competitive.
#include <iostream>

#include "bench_util.hpp"
#include "busy/exact_busy.hpp"
#include "busy/first_fit.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/lower_bounds.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"

int main() {
  using namespace abt;
  bench::banner(
      "E9 / interval + flexible random sweep",
      "Mean/max ratio to exact OPT (small instances, interval jobs), then "
      "mean ratio to best lower bound (larger instances and flexible "
      "jobs).");

  core::Rng rng(8154);  // arXiv id vintage

  {
    report::Table table({"n", "g", "trials", "FF mean", "FF max", "GT mean",
                         "GT max", "Peel mean", "Peel max"});
    struct Config {
      int n;
      int g;
    };
    for (const auto& [n, g] :
         {Config{6, 2}, Config{8, 2}, Config{8, 3}, Config{10, 3}}) {
      report::RatioStats ff_s;
      report::RatioStats gt_s;
      report::RatioStats pe_s;
      for (int t = 0; t < 15; ++t) {
        gen::ContinuousParams params;
        params.num_jobs = n;
        params.capacity = g;
        params.horizon = 12;
        const auto inst = gen::random_continuous(rng, params);
        const auto exact = busy::solve_exact_interval(inst);
        const double opt = core::busy_cost(inst, *exact);
        ff_s.add(core::busy_cost(inst, busy::first_fit(inst)) / opt);
        gt_s.add(core::busy_cost(inst, busy::greedy_tracking(inst)) / opt);
        pe_s.add(core::busy_cost(inst, busy::two_track_peeling(inst)) / opt);
      }
      table.add_row({std::to_string(n), std::to_string(g), "15",
                     report::Table::num(ff_s.mean()),
                     report::Table::num(ff_s.max()),
                     report::Table::num(gt_s.mean()),
                     report::Table::num(gt_s.max()),
                     report::Table::num(pe_s.mean()),
                     report::Table::num(pe_s.max())});
    }
    std::cout << "interval jobs vs exact OPT:\n";
    table.print(std::cout);
  }

  {
    report::Table table({"n", "g", "trials", "FF/LB", "GT/LB", "Peel/LB"});
    struct Config {
      int n;
      int g;
    };
    for (const auto& [n, g] :
         {Config{40, 3}, Config{80, 4}, Config{150, 5}, Config{300, 8}}) {
      report::RatioStats ff_s;
      report::RatioStats gt_s;
      report::RatioStats pe_s;
      for (int t = 0; t < 5; ++t) {
        gen::ContinuousParams params;
        params.num_jobs = n;
        params.capacity = g;
        params.horizon = 10 + n / 4.0;
        const auto inst = gen::random_continuous(rng, params);
        const auto lb = busy::busy_lower_bounds(inst);
        ff_s.add(core::busy_cost(inst, busy::first_fit(inst)) / lb.best());
        gt_s.add(core::busy_cost(inst, busy::greedy_tracking(inst)) /
                 lb.best());
        pe_s.add(core::busy_cost(inst, busy::two_track_peeling(inst)) /
                 lb.best());
      }
      table.add_row({std::to_string(n), std::to_string(g), "5",
                     report::Table::num(ff_s.mean()),
                     report::Table::num(gt_s.mean()),
                     report::Table::num(pe_s.mean())});
    }
    std::cout << "\nlarger interval instances vs best lower bound:\n";
    table.print(std::cout);
  }

  {
    report::Table table({"n", "g", "slack", "trials", "GT pipeline/LB",
                         "Peel pipeline/LB", "FF pipeline/LB"});
    struct Config {
      int n;
      int g;
      double slack;
    };
    for (const auto& [n, g, slack] :
         {Config{10, 2, 1.0}, Config{14, 3, 1.5}, Config{18, 3, 2.0}}) {
      report::RatioStats gt_s;
      report::RatioStats pe_s;
      report::RatioStats ff_s;
      for (int t = 0; t < 8; ++t) {
        gen::ContinuousParams params;
        params.num_jobs = n;
        params.capacity = g;
        params.horizon = 16;
        params.max_slack = slack;
        const auto inst = gen::random_continuous(rng, params);
        const auto lb = busy::busy_lower_bounds(inst);
        const double bound = lb.best();
        gt_s.add(core::busy_cost(
                     inst, busy::schedule_flexible(
                               inst, busy::IntervalAlgorithm::kGreedyTracking)
                               .schedule) /
                 bound);
        pe_s.add(core::busy_cost(
                     inst, busy::schedule_flexible(
                               inst, busy::IntervalAlgorithm::kTwoTrackPeeling)
                               .schedule) /
                 bound);
        ff_s.add(core::busy_cost(
                     inst, busy::schedule_flexible(
                               inst, busy::IntervalAlgorithm::kFirstFit)
                               .schedule) /
                 bound);
      }
      table.add_row({std::to_string(n), std::to_string(g),
                     report::Table::num(slack, 1), "8",
                     report::Table::num(gt_s.mean()),
                     report::Table::num(pe_s.mean()),
                     report::Table::num(ff_s.mean())});
    }
    std::cout << "\nflexible jobs through the DP pipeline (section 4.3):\n";
    table.print(std::cout);
  }

  std::cout << "\npaper guarantees: FF <= 4, GT <= 3 (Thm 5), Peel <= 2 "
               "(interval, Thm 3); pipeline: GT <= 3, profile algorithms "
               "<= 4 (Thm 10).\n";
  return 0;
}
