// E12 — design-choice ablations called out in DESIGN.md:
//   (a) minimal-feasible closing order (the only degree of freedom in
//       Theorem 1's algorithm) across instance families;
//   (b) TwoTrackPeeling's pair-split policy (consolidating coloring vs the
//       Kumar-Rudra parity split) across families;
//   (c) online policies vs the offline algorithms (the price of
//       irrevocable decisions, related-work section / Shalom et al.).
#include <iostream>

#include "active/exact.hpp"
#include "active/minimal_feasible.hpp"
#include "bench_util.hpp"
#include "busy/demand_profile.hpp"
#include "busy/lower_bounds.hpp"
#include "core/rng.hpp"
#include "gen/gadgets.hpp"
#include "gen/random_instances.hpp"

int main() {
  using namespace abt;
  bench::banner("E12 / ablations",
                "Close-order, pair-split and online-policy ablations.");

  {
    std::cout << "(a) minimal-feasible closing order, mean ratio to exact "
                 "OPT (20 random instances each) plus the Fig 3 family:\n";
    report::Table table({"order", "random n=8 g=2", "random n=8 unit",
                         "fig3 g=12 (/OPT)"});
    const auto orders = {
        std::pair{"left-to-right", active::CloseOrder::kLeftToRight},
        std::pair{"right-to-left", active::CloseOrder::kRightToLeft},
        std::pair{"sparsest-first", active::CloseOrder::kSparsestFirst},
        std::pair{"densest-first", active::CloseOrder::kDensestFirst},
        std::pair{"random(seed 9)", active::CloseOrder::kRandom},
    };
    for (const auto& [label, order] : orders) {
      active::MinimalFeasibleOptions options;
      options.order = order;
      options.seed = 9;

      report::RatioStats general;
      report::RatioStats unit;
      core::Rng rng(515);
      for (int t = 0; t < 20; ++t) {
        gen::SlottedParams params;
        params.num_jobs = 8;
        params.horizon = 10;
        params.capacity = 2;
        const auto inst = gen::random_feasible_slotted(rng, params);
        const auto exact = active::solve_exact(inst);
        const double opt = static_cast<double>(exact->schedule.cost());
        if (opt > 0) {
          general.add(
              static_cast<double>(
                  active::solve_minimal_feasible(inst, options)->cost()) /
              opt);
        }
        params.unit_jobs = true;
        const auto uinst = gen::random_feasible_slotted(rng, params);
        const auto uexact = active::solve_exact(uinst);
        const double uopt = static_cast<double>(uexact->schedule.cost());
        if (uopt > 0) {
          unit.add(static_cast<double>(
                       active::solve_minimal_feasible(uinst, options)->cost()) /
                   uopt);
        }
      }
      const int g = 12;
      const auto fig3 = gen::fig3_instance(g);
      const double fig3_ratio =
          static_cast<double>(
              active::solve_minimal_feasible(fig3, options)->cost()) /
          g;
      table.add_row({label, report::Table::num(general.mean()),
                     report::Table::num(unit.mean()),
                     report::Table::num(fig3_ratio)});
    }
    table.print(std::cout);
  }

  {
    std::cout << "\n(b) TwoTrackPeeling pair split, cost / demand-profile "
                 "bound (guarantee: <= 2):\n";
    report::Table table({"family", "consolidate", "parity"});
    core::Rng rng(626);
    const auto run_family = [&](const std::string& name,
                                const core::ContinuousInstance& raw) {
      const core::ProblemInstance inst = core::make_instance(raw);
      const double profile = busy::DemandProfile(raw).cost();
      const double cons =
          bench::solver_cost("busy/two-track-peeling", inst);
      const double par = bench::solver_cost("busy/two-track-parity", inst);
      table.add_row({name, report::Table::num(cons / profile),
                     report::Table::num(par / profile)});
    };
    gen::ContinuousParams params;
    params.num_jobs = 60;
    params.capacity = 4;
    params.horizon = 25;
    run_family("uniform", gen::random_continuous(rng, params));
    run_family("clique", gen::random_clique(rng, params));
    run_family("proper", gen::random_proper(rng, params));
    run_family("laminar", gen::random_laminar(rng, params));
    run_family("fig10 padded (g=6)",
               busy::pad_to_capacity_multiple(
                   gen::fig10_adversarial_freeze(6, 0.01, 0.004)));
    table.print(std::cout);
  }

  {
    std::cout << "\n(c) online policies vs offline GreedyTracking, cost / "
                 "best lower bound (8 random instances each):\n";
    report::Table table({"n", "g", "online first-fit", "online best-fit",
                         "online next-fit", "offline GT"});
    core::Rng rng(737);
    const std::vector<std::string> solvers = {
        "busy/online-first-fit", "busy/online-best-fit",
        "busy/online-next-fit", "busy/greedy-tracking"};
    for (const auto& [n, g] : {std::pair{30, 3}, std::pair{80, 5}}) {
      const auto stats = bench::ratio_sweep(
          solvers, 8,
          [&](int) {
            gen::ContinuousParams params;
            params.num_jobs = n;
            params.capacity = g;
            params.horizon = 8 + n / 4.0;
            return core::make_instance(gen::random_continuous(rng, params));
          },
          [](const core::ProblemInstance& inst) {
            return busy::busy_lower_bounds(inst.continuous).best();
          });
      table.add_row({std::to_string(n), std::to_string(g),
                     report::Table::num(stats[0].mean()),
                     report::Table::num(stats[1].mean()),
                     report::Table::num(stats[2].mean()),
                     report::Table::num(stats[3].mean())});
    }
    table.print(std::cout);
  }

  std::cout << "\nreading: closing order only matters adversarially "
               "(densest-first reproduces Fig 3); the consolidating split "
               "wins clearly on structured families (laminar, the Fig 10 "
               "gadget) and ties parity on unstructured ones; online pays a "
               "modest premium on random inputs (its Omega(g) lower bound "
               "is adversarial).\n";
  return 0;
}
