// E1 — Fig 1: the worked example. Seven interval jobs, g = 3; the optimal
// packing uses two machines with total busy time 6. Reproduces the packing
// with the exact solver and shows what the approximation algorithms do.
#include <iostream>

#include "bench_util.hpp"
#include "busy/exact_busy.hpp"
#include "busy/first_fit.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/lower_bounds.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/busy_schedule.hpp"
#include "gen/gadgets.hpp"

int main() {
  using namespace abt;
  bench::banner("E1 / Fig 1",
                "Optimal packing of the 7-job example on 2 machines (g=3), "
                "total busy time 6; approximation algorithms for comparison.");

  const core::ContinuousInstance inst = gen::fig1_example();
  const auto exact = busy::solve_exact_interval(inst);
  const busy::BusyLowerBounds lb = busy::busy_lower_bounds(inst);

  report::Table jobs({"job", "interval", "length"});
  for (int j = 0; j < inst.size(); ++j) {
    const auto& job = inst.job(j);
    // Built with append instead of one operator+ chain: GCC 12's inliner
    // flags the chained temporaries with a bogus -Wrestrict (PR 105329).
    std::string window = "[";
    window += report::Table::num(job.release, 1);
    window += ", ";
    window += report::Table::num(job.deadline, 1);
    window += ")";
    jobs.add_row({std::to_string(j + 1), std::move(window),
                  report::Table::num(job.length, 1)});
  }
  jobs.print(std::cout);

  report::Table results({"algorithm", "busy time", "machines", "vs OPT"});
  const double opt = core::busy_cost(inst, *exact);
  auto add = [&](const std::string& name, const core::BusySchedule& s) {
    const double cost = core::busy_cost(inst, s);
    results.add_row({name, report::Table::num(cost),
                     std::to_string(s.machine_count()),
                     report::Table::num(cost / opt)});
  };
  add("exact (OPT)", *exact);
  add("GreedyTracking", busy::greedy_tracking(inst));
  add("TwoTrackPeeling", busy::two_track_peeling(inst));
  add("FirstFit", busy::first_fit(inst));
  std::cout << '\n';
  results.print(std::cout);
  std::cout << "\nlower bounds: mass/g=" << report::Table::num(lb.mass)
            << "  span=" << report::Table::num(lb.span)
            << "  profile=" << report::Table::num(lb.profile) << "\n";

  // Show the optimal bundles (the packing of Fig 1 (B)).
  std::cout << "\noptimal bundles:\n";
  for (int m = 0; m < exact->machine_count(); ++m) {
    std::cout << "  machine " << m << ":";
    for (int j = 0; j < inst.size(); ++j) {
      if (exact->placements[static_cast<std::size_t>(j)].machine == m) {
        std::cout << " " << (j + 1);
      }
    }
    std::cout << "  (busy "
              << report::Table::num(core::machine_busy_time(inst, *exact, m))
              << ")\n";
  }
  return 0;
}
