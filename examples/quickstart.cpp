// Quickstart: the two models of the paper in ~60 lines.
//
//  * Active time — one machine, capacity g, slotted time: minimize the
//    number of slots the machine is on (section 2-3 algorithms).
//  * Busy time — unlimited machines, capacity g each, continuous time:
//    minimize the total time machines are busy (section 4 algorithms).
#include <iostream>

#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/lower_bounds.hpp"
#include "core/active_schedule.hpp"
#include "core/busy_schedule.hpp"

int main() {
  using namespace abt;

  // --- Active time -------------------------------------------------------
  // Jobs are (release, deadline, length); job j may run in slots
  // release+1 .. deadline, one unit per slot, at most g jobs per slot.
  const core::SlottedInstance active_inst(
      {
          {0, 4, 2},  // 2 units anywhere in slots 1..4
          {1, 5, 3},  // 3 units in slots 2..5
          {0, 3, 1},
          {2, 6, 2},
      },
      /*capacity=*/2);

  const auto minimal = active::solve_minimal_feasible(active_inst);
  const auto rounded = active::solve_lp_rounding(active_inst);
  std::cout << "active time:\n"
            << "  minimal feasible (3-approx): " << minimal->cost()
            << " slots\n"
            << "  LP rounding (2-approx):      " << rounded->schedule.cost()
            << " slots (LP lower bound " << rounded->lp_objective << ")\n";
  std::cout << "  open slots:";
  for (const auto t : rounded->schedule.active_slots) std::cout << ' ' << t;
  std::cout << "\n\n";

  // --- Busy time ----------------------------------------------------------
  // Continuous windows; jobs run non-preemptively; machines are virtual.
  const core::ContinuousInstance busy_inst(
      {
          {0.0, 3.0, 3.0},   // rigid: must run [0, 3)
          {0.0, 6.0, 2.0},   // flexible: 2 units anywhere in [0, 6)
          {2.5, 7.0, 2.0},
          {4.0, 9.0, 3.0},
          {4.0, 7.0, 3.0},   // rigid
      },
      /*capacity=*/2);

  // The paper's recipe: g=infinity DP fixes start times, GreedyTracking
  // packs the resulting interval jobs -> 3-approximation overall.
  const auto result = busy::schedule_flexible(busy_inst);
  const auto bounds = busy::busy_lower_bounds(busy_inst);
  std::cout << "busy time:\n"
            << "  GreedyTracking pipeline (3-approx): "
            << core::busy_cost(busy_inst, result.schedule) << "\n"
            << "  lower bounds: mass/g=" << bounds.mass
            << "  OPT_inf=" << bounds.span << "\n";
  for (int j = 0; j < busy_inst.size(); ++j) {
    const auto& p = result.schedule.placements[static_cast<std::size_t>(j)];
    std::cout << "  job " << j << " -> machine " << p.machine << ", start "
              << p.start << "\n";
  }
  return 0;
}
