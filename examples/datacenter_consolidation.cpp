// Datacenter VM consolidation — the paper's motivating cloud scenario
// (section 1): batch jobs with SLAs (release/deadline windows) must be
// placed onto virtual machines; each physical host runs at most g jobs at
// once, and a host burns power for as long as at least one job runs on it.
// Minimizing total busy time = minimizing host-hours of energy.
//
// Compares FIRSTFIT (what a naive scheduler does), the paper's
// GREEDYTRACKING pipeline, and the profile-charging packer, on a synthetic
// daily workload of batch analytics jobs.
#include <iostream>

#include "busy/first_fit.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/lower_bounds.hpp"
#include "core/busy_schedule.hpp"
#include "core/rng.hpp"
#include "gen/random_instances.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

int main() {
  using namespace abt;
  std::cout << "VM consolidation: 120 batch jobs, hosts run up to g=8 VMs;\n"
               "cost = total host-hours powered on.\n\n";

  // A day of batch work: nightly ETL (tight windows), ad-hoc analytics
  // (loose windows), and a couple of long report builds.
  core::Rng rng(99);
  std::vector<core::ContinuousJob> jobs;
  for (int i = 0; i < 60; ++i) {  // nightly ETL, 0:00-6:00, ~1h each
    const double len = rng.uniform_real(0.5, 1.5);
    const double release = rng.uniform_real(0.0, 4.0);
    jobs.push_back({release, release + len + rng.uniform_real(0.0, 1.0), len});
  }
  for (int i = 0; i < 50; ++i) {  // daytime ad-hoc, loose SLAs
    const double len = rng.uniform_real(0.25, 2.0);
    const double release = rng.uniform_real(6.0, 20.0);
    jobs.push_back({release, release + len * rng.uniform_real(1.5, 4.0), len});
  }
  for (int i = 0; i < 10; ++i) {  // long report builds, due end of day
    const double len = rng.uniform_real(3.0, 5.0);
    jobs.push_back({rng.uniform_real(8.0, 12.0), 24.0, len});
  }
  const core::ContinuousInstance inst(std::move(jobs), /*hosts run*/ 8);

  const auto bounds = busy::busy_lower_bounds(inst);
  report::Table table({"scheduler", "host-hours", "hosts", "vs best bound"});
  auto add = [&](const std::string& name, const core::BusySchedule& s) {
    const double cost = core::busy_cost(inst, s);
    std::string why;
    if (!core::check_busy_schedule(inst, s, &why)) {
      std::cerr << "infeasible schedule from " << name << ": " << why << "\n";
      return;
    }
    table.add_row({name, report::Table::num(cost, 2),
                   std::to_string(s.machine_count()),
                   report::Table::num(cost / bounds.best(), 3)});
  };

  add("FirstFit (baseline)",
      busy::schedule_flexible(inst, busy::IntervalAlgorithm::kFirstFit)
          .schedule);
  add("GreedyTracking (paper, 3-approx)",
      busy::schedule_flexible(inst, busy::IntervalAlgorithm::kGreedyTracking)
          .schedule);
  add("TwoTrackPeeling (profile packer)",
      busy::schedule_flexible(inst, busy::IntervalAlgorithm::kTwoTrackPeeling)
          .schedule);

  table.print(std::cout);
  std::cout << "\nlower bounds: work/g = " << report::Table::num(bounds.mass, 2)
            << " host-hours, span (g=inf) = "
            << report::Table::num(bounds.span, 2) << " host-hours\n";

  const auto best =
      busy::schedule_flexible(inst, busy::IntervalAlgorithm::kGreedyTracking);
  std::cout << "\nGreedyTracking host timeline (one row per host):\n"
            << report::render_busy_gantt(inst, best.schedule, 96);
  return 0;
}
