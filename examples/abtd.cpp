// abtd: the persistent solver daemon over the full builtin registry.
// Listens on a Unix-domain socket (--socket PATH) and/or loopback TCP
// (--port N; 0 picks an ephemeral port, printed on startup), serves the
// service protocol (docs/SERVICE.md) until SIGINT/SIGTERM, then drains
// and prints a stats summary. `abt_solve --connect <addr>` is the
// matching client.

#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "engine/builtin_solvers.hpp"
#include "service/server.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void handle_signal(int /*signum*/) { g_stop_requested = 1; }

void usage(std::ostream& os) {
  os << "usage: abtd (--socket PATH | --port N) [options]\n"
        "  --socket PATH          Unix-domain listener\n"
        "  --port N               loopback TCP listener (0 = ephemeral)\n"
        "  --dispatchers N        request worker threads (default 2)\n"
        "  --threads N            per-request solver fan-out (0 = hardware)\n"
        "  --queue-soft N         load beyond which budgets shrink "
        "(default 4)\n"
        "  --queue-cap N          queued beyond which requests are shed "
        "(default 16)\n"
        "  --default-budget-ms X  budget an unlimited request shrinks from "
        "(default 500)\n"
        "  --min-budget-factor X  admission shrink floor (default 0.1)\n"
        "  --max-progress N       cap on per-request progress events "
        "(default 16)\n"
        "  --cache-entries N      solution cache entries (default 512)\n"
        "  --cache-bytes N        solution cache bytes (default 16777216)\n";
}

bool parse_int(const std::string& text, int* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return false;
  *out = static_cast<int>(value);
  return true;
}

bool parse_double(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return false;
  *out = value;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  abt::service::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " needs a value\n";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(std::cout);
      return 0;
    }
    const char* value = nullptr;
    if (arg == "--socket") {
      if ((value = need_value("--socket")) == nullptr) return 64;
      config.socket_path = value;
    } else if (arg == "--port") {
      if ((value = need_value("--port")) == nullptr) return 64;
      if (!parse_int(value, &config.tcp_port) || config.tcp_port < 0 ||
          config.tcp_port > 65535) {
        std::cerr << "--port needs 0..65535\n";
        return 64;
      }
    } else if (arg == "--dispatchers") {
      if ((value = need_value("--dispatchers")) == nullptr) return 64;
      if (!parse_int(value, &config.dispatchers) || config.dispatchers < 1) {
        std::cerr << "--dispatchers needs a positive integer\n";
        return 64;
      }
    } else if (arg == "--threads") {
      if ((value = need_value("--threads")) == nullptr) return 64;
      if (!parse_int(value, &config.threads) || config.threads < 0) {
        std::cerr << "--threads needs a non-negative integer\n";
        return 64;
      }
    } else if (arg == "--queue-soft") {
      if ((value = need_value("--queue-soft")) == nullptr) return 64;
      if (!parse_int(value, &config.queue_soft) || config.queue_soft < 0) {
        std::cerr << "--queue-soft needs a non-negative integer\n";
        return 64;
      }
    } else if (arg == "--queue-cap") {
      if ((value = need_value("--queue-cap")) == nullptr) return 64;
      if (!parse_int(value, &config.queue_cap) || config.queue_cap < 1) {
        std::cerr << "--queue-cap needs a positive integer\n";
        return 64;
      }
    } else if (arg == "--default-budget-ms") {
      if ((value = need_value("--default-budget-ms")) == nullptr) return 64;
      if (!parse_double(value, &config.default_budget_ms) ||
          config.default_budget_ms <= 0.0) {
        std::cerr << "--default-budget-ms needs a positive number\n";
        return 64;
      }
    } else if (arg == "--min-budget-factor") {
      if ((value = need_value("--min-budget-factor")) == nullptr) return 64;
      if (!parse_double(value, &config.min_budget_factor) ||
          config.min_budget_factor <= 0.0 || config.min_budget_factor > 1.0) {
        std::cerr << "--min-budget-factor needs a number in (0, 1]\n";
        return 64;
      }
    } else if (arg == "--max-progress") {
      if ((value = need_value("--max-progress")) == nullptr) return 64;
      if (!parse_int(value, &config.max_progress) || config.max_progress < 1) {
        std::cerr << "--max-progress needs a positive integer\n";
        return 64;
      }
    } else if (arg == "--cache-entries") {
      int entries = 0;
      if ((value = need_value("--cache-entries")) == nullptr) return 64;
      if (!parse_int(value, &entries) || entries < 1) {
        std::cerr << "--cache-entries needs a positive integer\n";
        return 64;
      }
      config.cache_entries = static_cast<std::size_t>(entries);
    } else if (arg == "--cache-bytes") {
      int bytes = 0;
      if ((value = need_value("--cache-bytes")) == nullptr) return 64;
      if (!parse_int(value, &bytes) || bytes < 1) {
        std::cerr << "--cache-bytes needs a positive integer\n";
        return 64;
      }
      config.cache_bytes = static_cast<std::size_t>(bytes);
    } else {
      std::cerr << "unknown option '" << arg << "'\n";
      usage(std::cerr);
      return 64;
    }
  }
  if (config.socket_path.empty() && config.tcp_port < 0) {
    usage(std::cerr);
    return 64;
  }

  const abt::core::SolverRegistry& registry = abt::engine::shared_registry();

  abt::service::Server server(registry, config);
  std::string error;
  if (!server.start(&error)) {
    std::cerr << "abtd: " << error << "\n";
    return 1;
  }
  if (!config.socket_path.empty()) {
    std::cout << "abtd listening on " << config.socket_path << "\n";
  }
  if (config.tcp_port >= 0) {
    std::cout << "abtd listening on 127.0.0.1:" << server.tcp_port() << "\n";
  }
  std::cout.flush();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::cerr << "abtd: shutting down\n";
  server.stop();

  const abt::service::ServiceStats stats = server.stats();
  std::cerr << "abtd: accepted " << stats.accepted << ", served "
            << stats.served << ", errors " << stats.errors << ", shed "
            << stats.shed << ", shrunk " << stats.shrunk << ", cache hits "
            << stats.cache.hits << "/" << stats.cache.hits + stats.cache.misses
            << "\n";
  return 0;
}
