// Optical network design — the paper's second motivating application
// (section 1 and Appendix A): lightpath requests occupy consecutive links
// of a fiber line; each fiber carries up to g wavelengths; the cost is the
// total length of fiber lit up (the OADM/fiber-minimization problem of
// Kumar-Rudra [11] and Alicherry-Bhatia [1]).
//
// Requests map to *interval jobs*: a request over links [i, j) is an
// interval job with release i, length j - i. Fibers are machines; lit fiber
// length is busy time.
#include <iostream>

#include "busy/demand_profile.hpp"
#include "busy/first_fit.hpp"
#include "busy/greedy_tracking.hpp"
#include "busy/lower_bounds.hpp"
#include "busy/two_track_peeling.hpp"
#include "core/busy_schedule.hpp"
#include "core/rng.hpp"
#include "report/table.hpp"

int main() {
  using namespace abt;
  std::cout
      << "Fiber minimization on a 40-link line, g = 4 wavelengths/fiber.\n"
         "Requests are lightpaths over consecutive links; minimize lit "
         "fiber.\n\n";

  // Traffic: many short local paths, some metro-length, a few express.
  core::Rng rng(1550);  // nm
  std::vector<core::ContinuousJob> requests;
  for (int i = 0; i < 70; ++i) {  // local
    const double len = rng.uniform_int(1, 4);
    const double from = rng.uniform_int(0, 40 - static_cast<long>(len));
    requests.push_back({from, from + len, len});
  }
  for (int i = 0; i < 25; ++i) {  // metro
    const double len = rng.uniform_int(5, 12);
    const double from = rng.uniform_int(0, 40 - static_cast<long>(len));
    requests.push_back({from, from + len, len});
  }
  for (int i = 0; i < 5; ++i) {  // express
    const double len = rng.uniform_int(20, 36);
    const double from = rng.uniform_int(0, 40 - static_cast<long>(len));
    requests.push_back({from, from + len, len});
  }
  const core::ContinuousInstance inst(std::move(requests), 4);

  const busy::DemandProfile profile(inst);
  const auto bounds = busy::busy_lower_bounds(inst);
  std::cout << "demand profile: max " << profile.max_raw_demand()
            << " concurrent lightpaths, profile bound "
            << report::Table::num(profile.cost(), 1) << " link-units\n\n";

  report::Table table({"assignment algorithm", "lit fiber", "fibers",
                       "vs profile bound"});
  auto add = [&](const std::string& name, const core::BusySchedule& s) {
    std::string why;
    if (!core::check_busy_schedule(inst, s, &why)) {
      std::cerr << name << " produced infeasible assignment: " << why << "\n";
      return;
    }
    const double cost = core::busy_cost(inst, s);
    table.add_row({name, report::Table::num(cost, 1),
                   std::to_string(s.machine_count()),
                   report::Table::num(cost / profile.cost(), 3)});
  };
  add("FirstFit [5]", busy::first_fit(inst));
  add("GreedyTracking (this paper)", busy::greedy_tracking(inst));
  add("TwoTrackPeeling (KR/AB charging)", busy::two_track_peeling(inst));
  table.print(std::cout);

  std::cout << "\nall bounds: mass/g=" << report::Table::num(bounds.mass, 1)
            << "  span=" << report::Table::num(bounds.span, 1)
            << "  profile=" << report::Table::num(bounds.profile, 1)
            << "; profile-charging keeps lit fiber <= 2x profile.\n";
  return 0;
}
