// abt_solve — command-line front end for the library: read an instance
// file (see core/io.hpp for the format), run every applicable algorithm,
// print costs, lower bounds and a Gantt chart.
//
//   abt_solve <instance-file> [--gantt]
//   abt_solve --demo-slotted | --demo-continuous   (print a sample file)
//
// Exit code: 0 on success, 1 on unreadable/infeasible input.
#include <fstream>
#include <iostream>
#include <sstream>

#include "active/exact.hpp"
#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "busy/first_fit.hpp"
#include "busy/flexible_pipeline.hpp"
#include "busy/lower_bounds.hpp"
#include "core/io.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

namespace {

int solve_slotted(const abt::core::SlottedInstance& inst, bool gantt) {
  using namespace abt;
  std::cout << "active-time instance: " << inst.size() << " jobs, g = "
            << inst.capacity() << ", horizon " << inst.horizon() << "\n\n";
  const auto minimal = active::solve_minimal_feasible(inst);
  if (!minimal.has_value()) {
    std::cerr << "instance is infeasible\n";
    return 1;
  }
  const auto rounded = active::solve_lp_rounding(inst);

  report::Table table({"algorithm", "active slots", "guarantee"});
  table.add_row({"minimal feasible", std::to_string(minimal->cost()),
                 "<= 3 OPT"});
  table.add_row({"LP rounding", std::to_string(rounded->schedule.cost()),
                 "<= 2 OPT"});
  const bool small = inst.size() <= 10 && inst.horizon() <= 16;
  if (small) {
    const auto exact = active::solve_exact(inst);
    table.add_row({"exact", std::to_string(exact->schedule.cost()),
                   exact->proven_optimal ? "optimal" : "incumbent"});
  }
  table.print(std::cout);
  std::cout << "\nLP lower bound: " << rounded->lp_objective << "\n";
  if (gantt) {
    std::cout << "\n" << report::render_active_gantt(inst, rounded->schedule);
  }
  return 0;
}

int solve_continuous(const abt::core::ContinuousInstance& inst, bool gantt) {
  using namespace abt;
  std::cout << "busy-time instance: " << inst.size() << " jobs, g = "
            << inst.capacity() << ", "
            << (inst.all_interval_jobs() ? "interval" : "flexible")
            << " jobs\n\n";
  const auto bounds = busy::busy_lower_bounds(inst);
  report::Table table({"algorithm", "busy time", "machines", "guarantee"});
  const auto add = [&](const std::string& name,
                       const core::BusySchedule& sched,
                       const std::string& guarantee) {
    table.add_row({name, report::Table::num(core::busy_cost(inst, sched)),
                   std::to_string(sched.machine_count()), guarantee});
  };
  const auto gt =
      busy::schedule_flexible(inst, busy::IntervalAlgorithm::kGreedyTracking);
  const auto pe =
      busy::schedule_flexible(inst, busy::IntervalAlgorithm::kTwoTrackPeeling);
  const auto ff =
      busy::schedule_flexible(inst, busy::IntervalAlgorithm::kFirstFit);
  add("GreedyTracking", gt.schedule, "<= 3 OPT");
  add("TwoTrackPeeling", pe.schedule,
      inst.all_interval_jobs() ? "<= 2 OPT" : "<= 4 OPT");
  add("FirstFit", ff.schedule, "<= 4 OPT");
  table.print(std::cout);
  std::cout << "\nlower bounds: mass/g = " << report::Table::num(bounds.mass)
            << ", span = " << report::Table::num(bounds.span);
  if (bounds.profile > 0) {
    std::cout << ", profile = " << report::Table::num(bounds.profile);
  }
  std::cout << "\n";
  if (gantt) {
    std::cout << "\n" << report::render_busy_gantt(inst, gt.schedule, 96);
  }
  return 0;
}

constexpr const char* kDemoSlotted =
    "model slotted\n"
    "capacity 2\n"
    "job 0 4 2\n"
    "job 1 5 3\n"
    "job 0 3 1\n"
    "job 2 6 2\n";

constexpr const char* kDemoContinuous =
    "model continuous\n"
    "capacity 2\n"
    "job 0.0 3.0 3.0\n"
    "job 0.0 6.0 2.0\n"
    "job 2.5 7.0 2.0\n"
    "job 4.0 9.0 3.0\n";

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: abt_solve <instance-file> [--gantt]\n"
              << "       abt_solve --demo-slotted | --demo-continuous\n";
    return 1;
  }
  const std::string first = argv[1];
  if (first == "--demo-slotted") {
    std::cout << kDemoSlotted;
    return 0;
  }
  if (first == "--demo-continuous") {
    std::cout << kDemoContinuous;
    return 0;
  }
  bool gantt = false;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--gantt") gantt = true;
  }

  std::ifstream file(first);
  if (!file) {
    std::cerr << "cannot open '" << first << "'\n";
    return 1;
  }
  std::string error;
  const auto parsed = abt::core::parse_instance(file, &error);
  if (!parsed.has_value()) {
    std::cerr << "parse error in '" << first << "': " << error << "\n";
    return 1;
  }
  return parsed->kind == abt::core::ModelKind::kSlotted
             ? solve_slotted(parsed->slotted, gantt)
             : solve_continuous(parsed->continuous, gantt);
}
