// abt_solve — registry-driven command-line front end: drive any instance
// (parsed file, stdin, or generator scenario) through any subset of the
// registered solvers, with shared checker validation, timing, lower bounds
// and table/CSV/JSON reporting.
//
//   abt_solve --list                          list registered solvers
//   abt_solve --scenarios                     list generator scenarios
//   abt_solve <instance-file|-> [options]     solve a file ('-' = stdin)
//   abt_solve --gen <scenario> [options]      solve a generated instance
//   abt_solve --campaign <file|preset>        sweep a scenario grid
//   abt_solve --demo-slotted | --demo-continuous
//
// options:
//   --solvers a,b,c   registry names (default: every applicable solver)
//   --n K --g G --seed N --slack S --horizon H --eps E   scenario knobs
//   --trials N        sweep N seeded trials of the scenario (needs --gen)
//   --threads K       sweep worker threads (0 = hardware concurrency)
//   --budget-ms B     per-cell time budget; lifts the exact solvers' size
//                     gates (anytime mode: incumbent + gap on timeout)
//   --race a,b|auto   portfolio-race solvers on the shared pool; first
//                     acceptable finisher wins, losers are cancelled
//   --accept-gap G    race acceptance: winner must be within (1+G) of the
//                     tightest certified bound (default: any checker pass)
//   --selector M      nearest-centroid model file ('-' = stdin) ranking
//                     the contestants '--race auto' picks
//   --train-selector C  train a selector from campaign CSV ('-' = stdin),
//                     write the model to stdout and exit
//   --json | --csv    machine-readable report instead of the text table
//   --emit            print the generated instance (core/io format) and exit
//   --gantt           append a Gantt chart of the best feasible schedule
//
// Exit code: 0 on success, 1 on bad usage/unreadable input, 2 when any
// solver produced an infeasible schedule (checker verdict).
// Full reference: docs/CLI.md.
#include <charconv>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/io.hpp"
#include "core/solver.hpp"
#include "engine/builtin_solvers.hpp"
#include "engine/campaign.hpp"
#include "engine/parallel.hpp"
#include "engine/portfolio.hpp"
#include "engine/runner.hpp"
#include "engine/selector.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"
#include "service/protocol.hpp"

namespace {

using namespace abt;

constexpr const char* kUsage =
    "usage: abt_solve --list | --scenarios\n"
    "       abt_solve <instance-file|-> [options]\n"
    "       abt_solve --gen <scenario> [options]\n"
    "       abt_solve --campaign <file|preset> [options]\n"
    "       abt_solve --demo-slotted | --demo-continuous\n"
    "options: --solvers a,b,c  --n K --g G --seed N --slack S --horizon H\n"
    "         --eps E  --trials N --threads K  --budget-ms B\n"
    "         --race a,b|auto  --accept-gap G  --selector <model|->\n"
    "         --train-selector <csv|->  --json | --csv  --emit  --gantt\n"
    "         --connect <socket|host:port>  --progress K  --id NAME   "
    "(abtd client)\n";

constexpr const char* kDemoSlotted =
    "model slotted\n"
    "capacity 2\n"
    "job 0 4 2\n"
    "job 1 5 3\n"
    "job 0 3 1\n"
    "job 2 6 2\n";

constexpr const char* kDemoContinuous =
    "model continuous\n"
    "capacity 2\n"
    "job 0.0 3.0 3.0\n"
    "job 0.0 6.0 2.0\n"
    "job 2.5 7.0 2.0\n"
    "job 4.0 9.0 3.0\n";

struct CliOptions {
  std::string input;             ///< File path, "-", or empty when --gen.
  std::string scenario;          ///< Non-empty when --gen.
  std::string campaign;          ///< File or preset name when --campaign.
  engine::ScenarioSpec spec;
  std::vector<std::string> solvers;
  std::string race;              ///< "auto" or a solver list; empty = off.
  std::string connect;           ///< abtd address; empty = solve locally.
  std::string request_id;        ///< Daemon request id (cancel target).
  int progress = 0;              ///< Daemon progress events wanted.
  std::string selector;          ///< Selector model path ('-' = stdin).
  std::string train_selector;    ///< Campaign CSV to train from.
  double accept_gap = -1.0;      ///< Race acceptance gap (< 0 = checker only).
  int trials = 1;
  bool trials_given = false;     ///< Campaigns default to 4 unless set.
  int threads = 1;
  bool threads_given = false;    ///< Races default to hardware unless set.
  double budget_ms = 0.0;        ///< Per-cell budget (0 = unlimited).
  bool list = false;
  bool list_scenarios = false;
  bool json = false;
  bool csv = false;
  bool emit = false;
  bool gantt = false;
};

/// Strict full-string numeric parse: trailing garbage ("40x2") is an error,
/// not a silently truncated value.
template <typename T>
bool parse_full(const std::string& text, T& out) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end && !text.empty();
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

bool parse_args(int argc, char** argv, CliOptions& options,
                std::string& error) {
  const auto need_value = [&](int i, const std::string& flag) {
    if (i + 1 >= argc) {
      error = flag + " needs a value";
      return false;
    }
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      options.list = true;
    } else if (arg == "--scenarios") {
      options.list_scenarios = true;
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--emit") {
      options.emit = true;
    } else if (arg == "--gantt") {
      options.gantt = true;
    } else if (arg == "--gen") {
      if (!need_value(i, arg)) return false;
      options.scenario = argv[++i];
      options.spec.name = options.scenario;
    } else if (arg == "--campaign") {
      if (!need_value(i, arg)) return false;
      options.campaign = argv[++i];
    } else if (arg == "--solvers") {
      if (!need_value(i, arg)) return false;
      options.solvers = split_csv(argv[++i]);
    } else if (arg == "--race") {
      if (!need_value(i, arg)) return false;
      options.race = argv[++i];
      if (options.race.empty()) {
        error = "--race needs 'auto' or a solver list";
        return false;
      }
    } else if (arg == "--connect") {
      if (!need_value(i, arg)) return false;
      options.connect = argv[++i];
    } else if (arg == "--id") {
      if (!need_value(i, arg)) return false;
      options.request_id = argv[++i];
    } else if (arg == "--progress") {
      if (!need_value(i, arg)) return false;
      const std::string value = argv[++i];
      if (!parse_full(value, options.progress) || options.progress < 0) {
        error = "bad value for --progress: '" + value + "'";
        return false;
      }
    } else if (arg == "--selector") {
      if (!need_value(i, arg)) return false;
      options.selector = argv[++i];
    } else if (arg == "--train-selector") {
      if (!need_value(i, arg)) return false;
      options.train_selector = argv[++i];
    } else if (arg == "--accept-gap") {
      if (!need_value(i, arg)) return false;
      const std::string value = argv[++i];
      if (!parse_full(value, options.accept_gap) ||
          options.accept_gap < 0.0) {
        error = "bad value for --accept-gap: '" + value + "'";
        return false;
      }
    } else if (arg == "--n" || arg == "--g" || arg == "--seed" ||
               arg == "--slack" || arg == "--horizon" || arg == "--eps" ||
               arg == "--trials" || arg == "--threads" ||
               arg == "--budget-ms") {
      if (!need_value(i, arg)) return false;
      const std::string value = argv[++i];
      bool parsed = false;
      if (arg == "--n") {
        parsed = parse_full(value, options.spec.n);
      } else if (arg == "--g") {
        parsed = parse_full(value, options.spec.g);
      } else if (arg == "--seed") {
        parsed = parse_full(value, options.spec.seed);
      } else if (arg == "--slack") {
        parsed = parse_full(value, options.spec.slack);
      } else if (arg == "--horizon") {
        parsed = parse_full(value, options.spec.horizon);
      } else if (arg == "--trials") {
        parsed = parse_full(value, options.trials) && options.trials >= 1;
        options.trials_given = parsed;
      } else if (arg == "--threads") {
        parsed = parse_full(value, options.threads) && options.threads >= 0;
        options.threads_given = parsed;
      } else if (arg == "--budget-ms") {
        parsed = parse_full(value, options.budget_ms) &&
                 options.budget_ms > 0.0;
      } else {
        parsed = parse_full(value, options.spec.eps);
      }
      if (!parsed) {
        error = "bad value for " + arg + ": '" + value + "'";
        return false;
      }
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      error = "unknown flag '" + arg + "'";
      return false;
    } else if (options.input.empty()) {
      options.input = arg;
    } else {
      error = "multiple input files";
      return false;
    }
  }
  return true;
}

void list_solvers(const core::SolverRegistry& registry) {
  report::Table table({"solver", "family", "kind", "guarantee", "exact"});
  for (const core::Solver& solver : registry.all()) {
    table.add_row({solver.name, std::string(core::family_name(solver.family)),
                   std::string(core::instance_kind_name(solver.kind)),
                   solver.guarantee, solver.exact ? "yes" : ""});
  }
  table.print(std::cout);
  std::cout << "\n" << registry.size() << " solvers registered\n";
}

void list_scenarios() {
  report::Table table({"scenario", "family", "description"});
  for (const engine::ScenarioInfo& info : engine::scenarios()) {
    table.add_row({info.name, std::string(core::family_name(info.family)),
                   info.description});
  }
  table.print(std::cout);
  std::cout << "\nknobs: --n --g --seed --slack --horizon --eps\n";
}

int emit_instance(const core::ProblemInstance& inst) {
  // The uniform v2 writer covers all four kinds; an extension without
  // serialization support is a hard error — emitting the lossy
  // standard-model view instead would silently drop its payload.
  std::string why;
  if (!core::write_instance(std::cout, inst, &why)) {
    std::cerr << "cannot emit instance: " << why << "\n";
    return 1;
  }
  return 0;
}

/// Loads a selector model from a file or stdin ('-'); nullopt + message on
/// any failure (unreadable file, line-numbered parse error).
std::optional<engine::SelectorModel> load_selector(const std::string& path,
                                                   std::string& error) {
  if (path == "-") {
    return engine::parse_model(std::cin, &error);
  }
  std::ifstream file(path);
  if (!file) {
    error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  return engine::parse_model(file, &error);
}

/// Explicit `--race a,b,c` contestants; unknown names are a usage error
/// like --solvers (the library-level race would stamp refusal rows, but
/// the CLI treats a typo as a typo).
std::optional<std::vector<engine::RaceEntry>> explicit_entries(
    const core::SolverRegistry& registry, const std::string& list) {
  std::vector<engine::RaceEntry> entries;
  for (const std::string& name : split_csv(list)) {
    if (registry.find(name) == nullptr) {
      std::cerr << "unknown solver '" << name << "' (see --list)\n";
      return std::nullopt;
    }
    entries.push_back({name, 0.0});
  }
  if (entries.empty()) {
    std::cerr << "--race needs 'auto' or at least one solver name\n";
    return std::nullopt;
  }
  return entries;
}

void append_gantt(std::ostream& os, const engine::RunReport& report) {
  const core::Solution* best = nullptr;
  for (const core::Solution& sol : report.solutions) {
    if (!sol.ok || !sol.feasible || sol.preemptive.has_value()) continue;
    if (best == nullptr || sol.cost < best->cost) best = &sol;
  }
  if (best == nullptr) return;
  os << "\nbest feasible schedule (" << best->solver << "):\n";
  if (best->active.has_value()) {
    os << report::render_active_gantt(report.instance.slotted, *best->active);
  } else if (best->busy.has_value()) {
    os << report::render_busy_gantt(report.instance.continuous, *best->busy,
                                    96);
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions options;
  std::string error;
  if (argc < 2) {
    std::cerr << kUsage;
    return 1;
  }
  const std::string first = argv[1];
  if (first == "--demo-slotted") {
    std::cout << kDemoSlotted;
    return 0;
  }
  if (first == "--demo-continuous") {
    std::cout << kDemoContinuous;
    return 0;
  }
  if (!parse_args(argc, argv, options, error)) {
    std::cerr << error << "\n" << kUsage;
    return 1;
  }

  const core::SolverRegistry& registry = engine::shared_registry();

  // Offline training mode: campaign CSV in, versioned model text out.
  if (!options.train_selector.empty()) {
    std::optional<engine::SelectorModel> model;
    if (options.train_selector == "-") {
      model = engine::train_selector(std::cin, &error);
    } else {
      std::ifstream file(options.train_selector);
      if (!file) {
        std::cerr << "cannot open '" << options.train_selector << "'\n";
        return 1;
      }
      model = engine::train_selector(file, &error);
    }
    if (!model.has_value()) {
      std::cerr << "train-selector: " << error << "\n";
      return 1;
    }
    engine::write_model(std::cout, *model);
    return 0;
  }

  // Client mode is a single-instance solve/race shipped to a daemon; the
  // batch modes and local-only rendering stay local on purpose.
  if (!options.connect.empty() &&
      (!options.campaign.empty() || options.trials > 1 ||
       !options.selector.empty() || options.gantt)) {
    std::cerr << "--connect supports single-instance solve/race only "
                 "(--campaign, --trials, --selector and --gantt are "
                 "local-mode flags)\n";
    return 1;
  }

  // A race wants real concurrency: unless the user pinned --threads, use
  // every hardware worker so contestants actually overlap.
  if (!options.race.empty() && !options.threads_given) options.threads = 0;

  std::optional<engine::SelectorModel> selector_model;
  if (!options.selector.empty()) {
    selector_model = load_selector(options.selector, error);
    if (!selector_model.has_value()) {
      std::cerr << "selector: " << error << "\n";
      return 1;
    }
  }

  // Size the shared persistent pool once, up front: every sweep/campaign
  // this process runs (including back-to-back invocations in one session)
  // reuses these workers and their warm scratch arenas.
  if (options.threads != 1 && options.connect.empty()) {
    engine::ThreadPool::shared().resize(
        engine::resolve_threads(options.threads));
  }

  if (options.list) {
    list_solvers(registry);
    return 0;
  }
  if (options.list_scenarios) {
    list_scenarios();
    return 0;
  }

  // Campaign mode: a scenario grid (file or preset) through one shared
  // pool, reported as per-point aggregates.
  if (!options.campaign.empty()) {
    engine::CampaignGrid grid;
    if (std::ifstream file(options.campaign); file) {
      // The CLI scenario knobs seed the grid's base; the file's own
      // directives override them where present.
      const auto parsed = engine::parse_campaign(file, &error, options.spec);
      if (!parsed.has_value()) {
        std::cerr << "campaign parse error: " << error << "\n";
        return 1;
      }
      grid = *parsed;
    } else if (const auto preset = engine::campaign_preset(options.campaign);
               preset.has_value()) {
      grid = *preset;
      // Presets fix only the grid axes; every shared knob comes from the
      // CLI (so `--campaign smoke --seed 99` does what it says).
      grid.base.seed = options.spec.seed;
      grid.base.slack = options.spec.slack;
      grid.base.horizon = options.spec.horizon;
      grid.base.eps = options.spec.eps;
    } else {
      std::cerr << "'" << options.campaign
                << "' is neither a readable campaign file nor a preset\n"
                << "presets:\n";
      for (const engine::CampaignPresetInfo& info :
           engine::campaign_presets()) {
        std::cerr << "  " << info.name << " — " << info.description << "\n";
      }
      return 1;
    }
    for (const std::string& name : options.solvers) {
      if (registry.find(name) == nullptr) {
        std::cerr << "unknown solver '" << name << "' (see --list)\n";
        return 1;
      }
    }
    engine::CampaignOptions campaign_options;
    campaign_options.trials = options.trials_given ? options.trials : 4;
    campaign_options.threads = options.threads;
    campaign_options.run.solvers = options.solvers;
    campaign_options.run.budget_ms = options.budget_ms;
    if (!options.race.empty()) {
      campaign_options.race.enabled = true;
      campaign_options.race.accept_gap = options.accept_gap;
      if (options.race != "auto") {
        const auto entries = explicit_entries(registry, options.race);
        if (!entries.has_value()) return 1;
        campaign_options.race.entries = *entries;
      } else if (selector_model.has_value()) {
        campaign_options.race.model = &*selector_model;
      }
    }
    const auto report =
        engine::run_campaign(registry, grid, campaign_options, &error);
    if (!report.has_value()) {
      std::cerr << error << "\n";
      return 1;
    }
    if (options.json) {
      engine::write_campaign_json(std::cout, *report);
    } else if (options.csv) {
      engine::write_campaign_csv(std::cout, *report);
    } else {
      engine::print_campaign(std::cout, *report);
    }
    int ok_cells = 0;
    for (const engine::CampaignPoint& point : report->points) {
      if (point.infeasible_cells > 0) return 2;
      ok_cells += point.ok_cells;
    }
    if (ok_cells == 0) {
      std::cerr << "no solver produced a schedule at any grid point\n";
      return 1;
    }
    return 0;
  }

  // Trial-sweep mode: many seeds of one generated scenario through the
  // thread-pool engine, reported as per-solver aggregates.
  if (options.trials > 1) {
    if (!options.race.empty()) {
      std::cerr << "--trials with --race is not supported; use --campaign "
                   "for raced sweeps\n";
      return 1;
    }
    if (options.scenario.empty()) {
      std::cerr << "--trials needs --gen (sweeps regenerate the scenario "
                   "with seeds seed..seed+N-1)\n";
      return 1;
    }
    for (const std::string& name : options.solvers) {
      if (registry.find(name) == nullptr) {
        std::cerr << "unknown solver '" << name << "' (see --list)\n";
        return 1;
      }
    }
    engine::SweepOptions sweep_options;
    sweep_options.trials = options.trials;
    sweep_options.threads = options.threads;
    sweep_options.run.solvers = options.solvers;
    sweep_options.run.budget_ms = options.budget_ms;
    const auto sweep =
        engine::run_sweep(registry, options.spec, sweep_options, &error);
    if (!sweep.has_value()) {
      std::cerr << error << "\n";
      return 1;
    }
    if (options.json) {
      engine::write_sweep_json(std::cout, *sweep);
    } else if (options.csv) {
      engine::write_sweep_csv(std::cout, *sweep);
    } else {
      engine::print_sweep(std::cout, *sweep);
    }
    bool any_ok = false;
    for (const engine::RunReport& cell : sweep->cells) {
      for (const core::Solution& sol : cell.solutions) {
        if (sol.ok && !sol.feasible) return 2;
        any_ok = any_ok || sol.ok;
      }
    }
    if (!any_ok) {
      std::cerr << "no solver produced a schedule in any trial\n";
      return 1;
    }
    return 0;
  }

  // Resolve the instance: generator scenario, stdin, or file.
  core::ProblemInstance instance;
  if (!options.scenario.empty()) {
    const auto generated = engine::make_scenario(options.spec, &error);
    if (!generated.has_value()) {
      std::cerr << error << "\n";
      return 1;
    }
    instance = *generated;
  } else if (!options.input.empty()) {
    // parse_instance returns the uniform carrier directly: extended-kind
    // files (model weighted / multi-window) arrive with their extension
    // payload attached and flow through the same registry path as the
    // standard models.
    std::optional<core::ProblemInstance> parsed;
    if (options.input == "-") {
      parsed = core::parse_instance(std::cin, &error);
    } else {
      std::ifstream file(options.input);
      if (!file) {
        std::cerr << "cannot open '" << options.input << "'\n";
        return 1;
      }
      parsed = core::parse_instance(file, &error);
    }
    if (!parsed.has_value()) {
      std::cerr << "parse error: " << error << "\n";
      return 1;
    }
    instance = std::move(*parsed);
  } else {
    std::cerr << "no instance given (file, '-', or --gen)\n" << kUsage;
    return 1;
  }

  if (options.emit) return emit_instance(instance);

  // Unknown solver names are a usage error, not a silent no-op.
  for (const std::string& name : options.solvers) {
    if (registry.find(name) == nullptr) {
      std::cerr << "unknown solver '" << name << "' (see --list)\n";
      return 1;
    }
  }

  // Client mode: same flags, same payload schema, same exit contract —
  // the instance is serialized in the v2 format and solved by the daemon
  // (docs/SERVICE.md). Progress frames and service notes go to stderr so
  // stdout stays exactly the report the local mode would print.
  if (!options.connect.empty()) {
    const auto address = service::parse_address(options.connect, &error);
    if (!address.has_value()) {
      std::cerr << "--connect: " << error << "\n";
      return 1;
    }
    service::SolveRequest request;
    request.race = !options.race.empty();
    request.id = options.request_id;
    if (request.race && options.race != "auto") {
      request.solvers = split_csv(options.race);
      for (const std::string& name : request.solvers) {
        if (registry.find(name) == nullptr) {
          std::cerr << "unknown solver '" << name << "' (see --list)\n";
          return 1;
        }
      }
    } else if (!request.race) {
      request.solvers = options.solvers;
    }
    request.budget_ms = options.budget_ms;
    request.accept_gap = options.accept_gap;
    request.progress = options.progress;
    request.format = options.json ? "json" : options.csv ? "csv" : "table";
    request.instance = instance;
    service::Frame frame;
    frame.type = request.race ? service::FrameType::kRace
                              : service::FrameType::kSolve;
    std::ostringstream payload;
    if (!service::write_solve_payload(payload, request, &error)) {
      std::cerr << error << "\n";
      return 1;
    }
    frame.payload = payload.str();
    const auto exchange = service::client_roundtrip(*address, frame, &error);
    if (!exchange.has_value()) {
      std::cerr << "connect " << address->describe() << ": " << error << "\n";
      return 1;
    }
    for (const service::Frame& event : exchange->progress) {
      std::cerr << "progress: " << event.payload;
    }
    const service::Frame& final = exchange->final;
    if (final.type == service::FrameType::kOverloaded) {
      std::cerr << "server overloaded, request shed: " << final.payload;
      return 3;
    }
    if (final.type != service::FrameType::kOk) {
      std::cerr << "server error: " << final.payload;
      return 1;
    }
    if (final.has_flag("cached")) std::cerr << "served from cache\n";
    if (final.has_flag("budget-ms")) {
      std::cerr << "budget shrunk to " << final.flag("budget-ms")
                << " ms by admission control\n";
    }
    std::cout << final.payload;
    int exit_code = 0;
    if (!parse_full(final.flag("exit", "0"), exit_code)) exit_code = 0;
    return exit_code;
  }

  // Portfolio race: contestants share the instance and the pool; the
  // first acceptable finisher wins and the rest drain.
  if (!options.race.empty()) {
    engine::RunOptions run_options;
    run_options.budget_ms = options.budget_ms;
    const core::RunContext ctx = engine::make_run_context(run_options);
    std::vector<engine::RaceEntry> entries;
    if (options.race == "auto") {
      entries = engine::auto_entries(
          registry, instance,
          selector_model.has_value() ? &*selector_model : nullptr, 3, ctx);
      if (entries.empty()) {
        std::cerr << "no applicable solver for this instance\n";
        return 1;
      }
    } else {
      const auto parsed_entries = explicit_entries(registry, options.race);
      if (!parsed_entries.has_value()) return 1;
      entries = *parsed_entries;
    }
    engine::RaceOptions race_options;
    race_options.threads = options.threads;
    race_options.accept_gap = options.accept_gap;
    const engine::RaceReport race_report =
        engine::race(registry, instance, entries, ctx, race_options);
    if (options.json) {
      engine::write_race_json(std::cout, instance, race_report);
    } else if (options.csv) {
      engine::write_race_csv(std::cout, race_report);
    } else {
      engine::print_race(std::cout, race_report);
    }
    // The plain-run exit contract over the race rows: a checker FAIL
    // anywhere is 2, a winner (or best-effort feasible row) is 0.
    for (const core::Solution& sol : race_report.rows) {
      if (sol.ok && !sol.feasible) return 2;
    }
    if (race_report.winner < 0 && race_report.best < 0) {
      std::cerr << "no contestant produced a schedule\n";
      return 1;
    }
    return 0;
  }

  engine::RunOptions run_options;
  run_options.solvers = options.solvers;
  run_options.budget_ms = options.budget_ms;
  const engine::RunReport report =
      engine::run_instance(registry, instance, run_options);

  if (report.solutions.empty()) {
    std::cerr << "no applicable solver for this instance\n";
    return 1;
  }
  if (options.json) {
    engine::write_json(std::cout, report);
  } else if (options.csv) {
    engine::write_csv(std::cout, report);
  } else {
    engine::print_report(std::cout, report);
    if (options.gantt) append_gantt(std::cout, report);
  }

  // Exit contract: 2 when any produced schedule failed the checker, 1 when
  // nothing was solved at all (e.g. an infeasible instance declines every
  // solver), 0 otherwise.
  bool any_ok = false;
  for (const core::Solution& sol : report.solutions) {
    if (sol.ok && !sol.feasible) return 2;
    any_ok = any_ok || sol.ok;
  }
  if (!any_ok) {
    std::cerr << "no solver produced a schedule (infeasible instance?)\n";
    return 1;
  }
  return 0;
}
