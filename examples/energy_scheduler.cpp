// Duty-cycled processor — the active-time model (sections 2-3): a single
// edge device can run up to g tasks per time slot but pays for every slot
// it is powered on. Tasks are sensor-processing units of work with arrival
// times and deadlines; preemption at slot boundaries is fine.
//
// Shows the full active-time toolchain: feasibility, the minimal-feasible
// 3-approximation under several closing orders, the LP-rounding
// 2-approximation, and (instance is small) the exact optimum.
#include <iostream>

#include "active/exact.hpp"
#include "active/lp_rounding.hpp"
#include "active/minimal_feasible.hpp"
#include "core/active_schedule.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"

int main() {
  using namespace abt;
  std::cout << "Duty-cycled processor, g = 3 tasks/slot, horizon 16 slots.\n"
               "Cost = number of powered-on slots.\n\n";

  // A morning of sensor batches: (arrival, deadline, units of work).
  const core::SlottedInstance inst(
      {
          {0, 6, 3},    // radio sync, loose
          {0, 4, 2},    // telemetry pack
          {2, 8, 4},    // image tile
          {3, 7, 2},
          {4, 12, 3},   // model update
          {6, 10, 4},   // firmware delta (tight-ish)
          {8, 16, 2},
          {10, 14, 3},
          {12, 16, 2},
          {12, 16, 1},
      },
      3);

  report::Table table({"algorithm", "on-slots", "guarantee"});

  const auto exact = active::solve_exact(inst);
  table.add_row({"exact (branch&bound)", std::to_string(exact->schedule.cost()),
                 "optimal"});

  const auto rounding = active::solve_lp_rounding(inst);
  table.add_row({"LP rounding", std::to_string(rounding->schedule.cost()),
                 "<= 2 OPT (Thm 2)"});

  for (const auto& [label, order] :
       {std::pair{"minimal (left-to-right)", active::CloseOrder::kLeftToRight},
        std::pair{"minimal (right-to-left)", active::CloseOrder::kRightToLeft},
        std::pair{"minimal (densest-first)",
                  active::CloseOrder::kDensestFirst}}) {
    active::MinimalFeasibleOptions options;
    options.order = order;
    const auto sched = active::solve_minimal_feasible(inst, options);
    table.add_row({label, std::to_string(sched->cost()), "<= 3 OPT (Thm 1)"});
  }
  table.print(std::cout);

  std::cout << "\nLP lower bound: " << rounding->lp_objective
            << "; exact power-on schedule:";
  for (const auto t : exact->schedule.active_slots) std::cout << ' ' << t;
  std::cout << "\nper-slot load (exact):";
  for (int load : core::slot_loads(inst, exact->schedule)) {
    std::cout << ' ' << load;
  }
  std::cout << "\n\nexact schedule ('#'=unit, '.'=window, '^'=powered on):\n"
            << report::render_active_gantt(inst, exact->schedule);
  return 0;
}
